(* Tests for the two-level logic layer: bit vectors, cubes, covers, PLA
   parsing and — critically — implicit prime generation against two
   independent oracles (Quine-McCluskey tabulation and 3^n brute force). *)

open Logic

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Bitvec                                                             *)
(* ------------------------------------------------------------------ *)

let test_bitvec_basic () =
  let v = Bitvec.create 100 in
  check "fresh is zero" true (Bitvec.is_zero v);
  Bitvec.set v 63 true;
  Bitvec.set v 64 true;
  Bitvec.set v 99 true;
  check "get across word boundary" true (Bitvec.get v 63 && Bitvec.get v 64);
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount v);
  Bitvec.set v 64 false;
  Alcotest.(check int) "popcount after clear" 2 (Bitvec.popcount v);
  let ones = Bitvec.fold_ones v ~init:[] ~f:(fun acc i -> i :: acc) in
  Alcotest.(check (list int)) "iter_ones order" [ 63; 99 ] (List.rev ones)

let test_bitvec_logic () =
  let a = Bitvec.of_string "1100" and b = Bitvec.of_string "1010" in
  Alcotest.(check string) "and" "1000" (Bitvec.to_string (Bitvec.logand a b));
  Alcotest.(check string) "or" "1110" (Bitvec.to_string (Bitvec.logor a b));
  Alcotest.(check string) "xor" "0110" (Bitvec.to_string (Bitvec.logxor a b));
  Alcotest.(check string) "not" "0011" (Bitvec.to_string (Bitvec.lognot a));
  Alcotest.(check string) "andnot" "0100" (Bitvec.to_string (Bitvec.andnot a b));
  check "subset" true (Bitvec.subset (Bitvec.of_string "1000") a);
  check "not subset" false (Bitvec.subset a b);
  check "full after not of zero" true (Bitvec.is_full (Bitvec.lognot (Bitvec.create 130)))

let test_bitvec_full () =
  let v = Bitvec.create_full 65 in
  check "is_full" true (Bitvec.is_full v);
  Alcotest.(check int) "popcount full" 65 (Bitvec.popcount v);
  Bitvec.set v 64 false;
  check "not full" false (Bitvec.is_full v)

(* ------------------------------------------------------------------ *)
(* Cube                                                               *)
(* ------------------------------------------------------------------ *)

let test_cube_string () =
  let c = Cube.of_string "1-0" in
  Alcotest.(check string) "round trip" "1-0" (Cube.to_string c);
  check "phase one" true (Cube.phase c 0 = Cube.One);
  check "phase dash" true (Cube.phase c 1 = Cube.Dash);
  check "phase zero" true (Cube.phase c 2 = Cube.Zero);
  Alcotest.(check int) "literal count" 2 (Cube.literal_count c);
  Alcotest.(check int) "free count" 1 (Cube.free_count c)

let test_cube_cover_minterm () =
  let c = Cube.of_string "1-0" in
  (* minterm bit i = value of variable i; c requires x0=1, x2=0 *)
  check "covers 001" true (Cube.covers_minterm c 0b001);
  check "covers 011" true (Cube.covers_minterm c 0b011);
  check "not covers 000" false (Cube.covers_minterm c 0b000);
  check "not covers 101" false (Cube.covers_minterm c 0b101)

let test_cube_inter () =
  let a = Cube.of_string "1--" and b = Cube.of_string "-0-" in
  (match Cube.inter a b with
  | Some c -> Alcotest.(check string) "inter" "10-" (Cube.to_string c)
  | None -> Alcotest.fail "expected intersection");
  let d = Cube.of_string "0--" in
  check "disjoint" true (Cube.inter a d = None);
  Alcotest.(check int) "distance 1" 1 (Cube.distance a d)

let test_cube_subsume_consensus () =
  let big = Cube.of_string "1--" and small = Cube.of_string "10-" in
  check "subsumes" true (Cube.subsumes big small);
  check "not subsumes" false (Cube.subsumes small big);
  let a = Cube.of_string "11-" and b = Cube.of_string "01-" in
  (match Cube.consensus a b with
  | Some c -> Alcotest.(check string) "consensus" "-1-" (Cube.to_string c)
  | None -> Alcotest.fail "expected consensus");
  check "no consensus at distance 2" true
    (Cube.consensus (Cube.of_string "11-") (Cube.of_string "00-") = None);
  Alcotest.(check string) "supercube" "1--"
    (Cube.to_string (Cube.supercube (Cube.of_string "11-") (Cube.of_string "10-")))

let test_cube_minterms () =
  let c = Cube.of_string "1-0" in
  let acc = ref [] in
  Cube.iter_minterms c (fun m -> acc := m :: !acc);
  Alcotest.(check (list int)) "minterms" [ 0b001; 0b011 ] (List.sort compare !acc)

let test_cube_bdd () =
  let c = Cube.of_string "1-0" in
  let f = Cube.to_bdd c in
  Alcotest.(check (float 1e-9)) "bdd count" 2. (Bdd.sat_count ~nvars:3 f)

let test_cube_literal_set () =
  let c = Cube.of_string "1-0" in
  (* positive literal of var 0 is zdd var 0; negative literal of var 2 is 5 *)
  Alcotest.(check (list int)) "to_literal_set" [ 0; 5 ] (Cube.to_literal_set c);
  check "round trip" true (Cube.equal c (Cube.of_literal_set 3 [ 0; 5 ]))

(* ------------------------------------------------------------------ *)
(* Cover                                                              *)
(* ------------------------------------------------------------------ *)

let cover_of_strings n strs = Cover.of_cubes n (List.map Cube.of_string strs)

let test_cover_eval () =
  let f = cover_of_strings 3 [ "11-"; "0-0" ] in
  check "covers 110" true (Cover.eval_minterm f 0b011);
  (* 0b011 = x0=1,x1=1,x2=0 *)
  check "covers 000" true (Cover.eval_minterm f 0b000);
  check "not 101" false (Cover.eval_minterm f 0b101);
  Alcotest.(check int) "size" 2 (Cover.size f);
  Alcotest.(check int) "literal cost" 4 (Cover.literal_cost f)

let is_taut strs = Cover.is_tautology (cover_of_strings 2 strs)

let test_cover_tautology () =
  check "x + x' tautology" true (is_taut [ "1-"; "0-" ]);
  check "x + x'y + x'y'" true (is_taut [ "1-"; "01"; "00" ]);
  check "x + y not tautology" false (is_taut [ "1-"; "-1" ]);
  check "empty not tautology" false (Cover.is_tautology (Cover.empty 2));
  check "universe tautology" true (Cover.is_tautology (Cover.universe 2))

let test_cover_complement () =
  let f = cover_of_strings 3 [ "11-"; "0-0" ] in
  let fc = Cover.complement f in
  let fb = Cover.to_bdd f in
  check "complement semantics" true (Bdd.equal (Cover.to_bdd fc) (Bdd.bnot fb));
  (* complement of empty / universe *)
  check "comp empty" true (Cover.is_tautology (Cover.complement (Cover.empty 3)));
  check "comp universe" true (Cover.is_empty (Cover.complement (Cover.universe 3)))

let test_cover_covers_cube () =
  let f = cover_of_strings 3 [ "1--"; "-1-" ] in
  check "covers 11-" true (Cover.covers_cube f (Cube.of_string "11-"));
  check "covers 1-0" true (Cover.covers_cube f (Cube.of_string "1-0"));
  check "not covers ---" false (Cover.covers_cube f (Cube.of_string "---"));
  check "not covers 00-" false (Cover.covers_cube f (Cube.of_string "00-"))

let test_cover_scc () =
  let f = cover_of_strings 3 [ "1--"; "11-"; "11-"; "-00" ] in
  let g = Cover.single_cube_containment f in
  Alcotest.(check int) "scc size" 2 (Cover.size g)

let test_cover_sharp () =
  let f = cover_of_strings 3 [ "---" ] in
  let s = Cover.sharp f (Cube.of_string "11-") in
  let expect = Bdd.bnot (Cube.to_bdd (Cube.of_string "11-")) in
  check "sharp semantics" true (Bdd.equal (Cover.to_bdd s) expect)

(* ------------------------------------------------------------------ *)
(* PLA                                                                *)
(* ------------------------------------------------------------------ *)

let sample_pla =
  ".i 3\n.o 2\n.type fd\n# a comment\n.p 3\n11- 10\n0-0 11\n--1 -1\n.e\n"

let test_pla_parse () =
  let pla = Pla.parse sample_pla in
  Alcotest.(check int) "ni" 3 pla.Pla.ni;
  Alcotest.(check int) "no" 2 pla.Pla.no;
  Alcotest.(check int) "rows" 3 (List.length pla.Pla.rows);
  let on0 = Pla.onset pla 0 in
  Alcotest.(check int) "onset f0 size" 2 (Cover.size on0);
  let dc0 = Pla.dcset pla 0 in
  Alcotest.(check int) "dcset f0 size" 1 (Cover.size dc0);
  Alcotest.(check int) "dcset f1 empty" 0 (Cover.size (Pla.dcset pla 1))

let test_pla_round_trip () =
  let pla = Pla.parse sample_pla in
  let pla2 = Pla.parse (Pla.to_string pla) in
  check "onset preserved" true
    (Cover.equal_semantics (Pla.onset pla 0) (Pla.onset pla2 0)
    && Cover.equal_semantics (Pla.onset pla 1) (Pla.onset pla2 1))

let test_pla_offset_fd () =
  let pla = Pla.parse ".i 2\n.o 1\n.type fd\n11 1\n00 -\n.e\n" in
  let off = Pla.offset pla 0 in
  (* OFF = complement of ON ∪ DC = {01, 10} *)
  check "offset semantics" true
    (Bdd.equal (Cover.to_bdd off)
       (Bdd.bxor (Bdd.var 0) (Bdd.var 1)))

let test_pla_errors () =
  check "bad width raises" true
    (try
       ignore (Pla.parse ".i 3\n.o 1\n11 1\n.e\n");
       false
     with Parse_error.Parse_error _ -> true);
  check "missing .i raises" true
    (try
       ignore (Pla.parse ".o 1\n1 1\n.e\n");
       false
     with Parse_error.Parse_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Primes                                                             *)
(* ------------------------------------------------------------------ *)

let sort_cubes cs = List.sort Cube.compare cs

let random_cover rng n max_cubes =
  let n_cubes = 1 + Random.State.int rng max_cubes in
  let cube _ =
    Cube.of_string
      (String.init n (fun _ ->
           match Random.State.int rng 3 with
           | 0 -> '0'
           | 1 -> '1'
           | _ -> '-'))
  in
  Cover.of_cubes n (List.init n_cubes cube)

let test_primes_simple () =
  (* f = x0 x1 + x0' : primes are x0' , x1 *)
  let on = cover_of_strings 2 [ "11"; "0-" ] in
  let dc = Cover.empty 2 in
  let primes = Primes.to_cubes ~nvars:2 (Primes.of_covers ~on ~dc) in
  Alcotest.(check (list string))
    "primes of x0x1 + x0'"
    [ "-1"; "0-" ]
    (List.map Cube.to_string (sort_cubes primes))

let test_primes_tautology () =
  let on = cover_of_strings 2 [ "1-"; "0-" ] in
  let z = Primes.of_covers ~on ~dc:(Cover.empty 2) in
  check "tautology => base" true (Zdd.is_base z)

let test_primes_against_oracles () =
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 40 do
    let n = 3 + Random.State.int rng 3 in
    let on = random_cover rng n 5 in
    let dc = random_cover rng n 2 in
    (* make DC disjoint from ON to keep the spec canonical (not required,
       but mirrors well-formed PLAs) *)
    let implicit =
      sort_cubes (Primes.to_cubes ~nvars:n (Primes.of_covers ~on ~dc))
    in
    let qm = sort_cubes (Qm.primes ~on ~dc) in
    let brute = sort_cubes (Qm.brute_force_primes ~on ~dc) in
    let show cs = String.concat " " (List.map Cube.to_string cs) in
    Alcotest.(check string) "implicit = qm" (show qm) (show implicit);
    Alcotest.(check string) "implicit = brute" (show brute) (show implicit)
  done

let test_essential_primes () =
  (* f = x0x1 + x0'x1' over 2 vars: both primes essential *)
  let on = cover_of_strings 2 [ "11"; "00" ] in
  let dc = Cover.empty 2 in
  let primes = Primes.to_cubes ~nvars:2 (Primes.of_covers ~on ~dc) in
  let ess = Primes.essential ~on ~dc ~primes in
  Alcotest.(check int) "both essential" 2 (List.length ess);
  (* f = x0 + x1 with dc covering the overlap: both still essential *)
  let on2 = cover_of_strings 2 [ "1-"; "-1" ] in
  let primes2 = Primes.to_cubes ~nvars:2 (Primes.of_covers ~on:on2 ~dc) in
  let ess2 = Primes.essential ~on:on2 ~dc ~primes:primes2 in
  Alcotest.(check int) "two essential" 2 (List.length ess2)

let prop_primes_cover_onset =
  QCheck.Test.make ~name:"primes cover the onset" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 10_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 2 in
      let on = random_cover rng n 4 in
      let primes = Primes.to_cubes ~nvars:n (Primes.of_covers ~on ~dc:(Cover.empty n)) in
      let pc = Cover.of_cubes n primes in
      Cover.covers pc on && Cover.covers (Cover.union on (Cover.empty n)) pc)

(* ------------------------------------------------------------------ *)
(* Cover recursion properties                                         *)
(* ------------------------------------------------------------------ *)

let arb_seed_small = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let prop_cover_shannon =
  QCheck.Test.make ~name:"cover cofactor satisfies shannon expansion" ~count:80
    arb_seed_small (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 2 in
      let f = random_cover rng n 5 in
      List.for_all
        (fun v ->
          let pos = Cube.of_literals n [ (v, true) ] in
          let neg = Cube.of_literals n [ (v, false) ] in
          let f1 = Cover.cofactor f ~by:pos and f0 = Cover.cofactor f ~by:neg in
          let xb = Bdd.var v in
          Bdd.equal (Cover.to_bdd f)
            (Bdd.bor
               (Bdd.band xb (Cover.to_bdd f1))
               (Bdd.band (Bdd.bnot xb) (Cover.to_bdd f0))))
        [ 0; n - 1 ])

let prop_cover_sharp_semantics =
  QCheck.Test.make ~name:"sharp computes f and-not cube" ~count:80 arb_seed_small
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 2 in
      let f = random_cover rng n 4 in
      let c =
        Cube.of_string
          (String.init n (fun _ ->
               match Random.State.int rng 3 with
               | 0 -> '0'
               | 1 -> '1'
               | _ -> '-'))
      in
      let s = Cover.sharp f c in
      Bdd.equal (Cover.to_bdd s) (Bdd.bdiff (Cover.to_bdd f) (Cube.to_bdd c)))

let prop_cover_tautology_agrees_with_bdd =
  QCheck.Test.make ~name:"tautology check agrees with BDD" ~count:100 arb_seed_small
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 3 in
      let f = random_cover rng n 6 in
      Cover.is_tautology f = Bdd.is_one (Cover.to_bdd f))

let prop_cover_containment_agrees_with_bdd =
  QCheck.Test.make ~name:"covers agrees with BDD implication" ~count:100 arb_seed_small
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 2 in
      let f = random_cover rng n 4 and g = random_cover rng n 4 in
      Cover.covers f g = Bdd.implies (Cover.to_bdd g) (Cover.to_bdd f))

let test_pla_fr_type () =
  let pla = Pla.parse ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n" in
  let off = Pla.offset pla 0 in
  Alcotest.(check int) "explicit offset" 1 (Cover.size off);
  Alcotest.(check int) "no dc in fr" 0 (Cover.size (Pla.dcset pla 0))

let test_pla_file_io () =
  let path = Filename.temp_file "ucp" ".pla" in
  let oc = open_out path in
  output_string oc sample_pla;
  close_out oc;
  let pla = Pla.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "ni from file" 3 pla.Pla.ni

(* ------------------------------------------------------------------ *)
(* ISOP                                                               *)
(* ------------------------------------------------------------------ *)

let test_isop_simple () =
  (* f = x0 x1 + x0' : an ISOP has two cubes *)
  let on = cover_of_strings 2 [ "11"; "0-" ] in
  let cubes = Isop.compute_cubes ~nvars:2 ~on ~dc:(Cover.empty 2) in
  Alcotest.(check int) "two cubes" 2 (List.length cubes);
  check "semantics" true
    (Cover.equal_semantics (Cover.of_cubes 2 cubes) on)

let prop_isop_interval_and_irredundant =
  QCheck.Test.make ~name:"isop: within interval and irredundant" ~count:80
    (QCheck.make (QCheck.Gen.int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 3 in
      let on = random_cover rng n 5 in
      let dc = random_cover rng n 2 in
      let cubes = Isop.compute_cubes ~nvars:n ~on ~dc in
      let f = Cover.of_cubes n cubes in
      let fb = Cover.to_bdd f
      and onb = Cover.to_bdd on
      and careb = Bdd.bor (Cover.to_bdd on) (Cover.to_bdd dc) in
      let interval = Bdd.implies onb fb && Bdd.implies fb careb in
      (* irredundancy: dropping any cube must uncover part of ON *)
      let irredundant =
        List.for_all
          (fun c ->
            let rest =
              Cover.of_cubes n (List.filter (fun d -> not (Cube.equal c d)) cubes)
            in
            not (Bdd.implies onb (Cover.to_bdd rest)))
          cubes
      in
      interval && irredundant)

let prop_isop_at_most_minterms =
  QCheck.Test.make ~name:"isop never exceeds the minterm count" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 1_000_000)) (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 3 + Random.State.int rng 2 in
      let on = random_cover rng n 4 in
      let cubes = Isop.compute_cubes ~nvars:n ~on ~dc:(Cover.empty n) in
      List.length cubes <= List.length (Cover.minterms on))

let () =
  Alcotest.run "logic"
    [
      ( "bitvec",
        [
          Alcotest.test_case "basic" `Quick test_bitvec_basic;
          Alcotest.test_case "logic" `Quick test_bitvec_logic;
          Alcotest.test_case "full" `Quick test_bitvec_full;
        ] );
      ( "cube",
        [
          Alcotest.test_case "string" `Quick test_cube_string;
          Alcotest.test_case "covers_minterm" `Quick test_cube_cover_minterm;
          Alcotest.test_case "inter" `Quick test_cube_inter;
          Alcotest.test_case "subsume/consensus" `Quick test_cube_subsume_consensus;
          Alcotest.test_case "minterms" `Quick test_cube_minterms;
          Alcotest.test_case "to_bdd" `Quick test_cube_bdd;
          Alcotest.test_case "literal sets" `Quick test_cube_literal_set;
        ] );
      ( "cover",
        [
          Alcotest.test_case "eval" `Quick test_cover_eval;
          Alcotest.test_case "tautology" `Quick test_cover_tautology;
          Alcotest.test_case "complement" `Quick test_cover_complement;
          Alcotest.test_case "covers_cube" `Quick test_cover_covers_cube;
          Alcotest.test_case "scc" `Quick test_cover_scc;
          Alcotest.test_case "sharp" `Quick test_cover_sharp;
          QCheck_alcotest.to_alcotest prop_cover_shannon;
          QCheck_alcotest.to_alcotest prop_cover_sharp_semantics;
          QCheck_alcotest.to_alcotest prop_cover_tautology_agrees_with_bdd;
          QCheck_alcotest.to_alcotest prop_cover_containment_agrees_with_bdd;
        ] );
      ( "pla",
        [
          Alcotest.test_case "parse" `Quick test_pla_parse;
          Alcotest.test_case "round trip" `Quick test_pla_round_trip;
          Alcotest.test_case "offset fd" `Quick test_pla_offset_fd;
          Alcotest.test_case "fr type" `Quick test_pla_fr_type;
          Alcotest.test_case "file io" `Quick test_pla_file_io;
          Alcotest.test_case "errors" `Quick test_pla_errors;
        ] );
      ( "isop",
        [
          Alcotest.test_case "simple" `Quick test_isop_simple;
          QCheck_alcotest.to_alcotest prop_isop_interval_and_irredundant;
          QCheck_alcotest.to_alcotest prop_isop_at_most_minterms;
        ] );
      ( "primes",
        [
          Alcotest.test_case "simple" `Quick test_primes_simple;
          Alcotest.test_case "tautology" `Quick test_primes_tautology;
          Alcotest.test_case "vs oracles" `Slow test_primes_against_oracles;
          Alcotest.test_case "essential" `Quick test_essential_primes;
          QCheck_alcotest.to_alcotest prop_primes_cover_onset;
        ] );
    ]
