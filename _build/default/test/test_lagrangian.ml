(* Tests for the Lagrangian engine: relaxation values, dual ascent,
   subgradient bounds, penalties and the Proposition-1 bound hierarchy,
   with the exact solver as the oracle throughout. *)

open Covering
module TS = Test_support
module L = Lagrangian

let check = Alcotest.(check bool)

let optimum m = Matrix.cost_of m (Exact.brute_force m)

(* ------------------------------------------------------------------ *)
(* Relaxation                                                         *)
(* ------------------------------------------------------------------ *)

let test_relax_zero_multipliers () =
  let m = TS.fig1_matrix () in
  let lambda = Array.make (Matrix.n_rows m) 0. in
  let ev = L.Relax.evaluate m lambda in
  (* with λ = 0 nothing is attractive: value 0, everything violated *)
  Alcotest.(check (float 1e-9)) "value" 0. ev.L.Relax.value;
  Alcotest.(check int) "violated" (Matrix.n_rows m) ev.L.Relax.violated;
  Array.iteri
    (fun j c ->
      Alcotest.(check (float 1e-9)) "cost" (float_of_int (Matrix.cost m j)) c)
    ev.L.Relax.reduced_costs

let test_relax_value_formula () =
  let m = TS.c5_matrix () in
  let lambda = Array.make 5 0.5 in
  let ev = L.Relax.evaluate m lambda in
  (* each column: cost 1, covered rows 2 → c̃ = 0 → in solution, value
     contribution 0; plus Σλ = 2.5 *)
  Alcotest.(check (float 1e-9)) "value 2.5" 2.5 ev.L.Relax.value;
  check "all selected" true (Array.for_all Fun.id ev.L.Relax.in_solution)

let prop_lagrangian_value_is_lower_bound =
  QCheck.Test.make ~name:"z_LP(λ) <= optimum for random λ" ~count:200
    (QCheck.pair TS.arb_seed TS.arb_seed) (fun (seed, lseed) ->
      let m = TS.small_matrix_of_seed seed in
      let rng = Random.State.make [| lseed |] in
      let lambda =
        Array.init (Matrix.n_rows m) (fun _ -> Random.State.float rng 3.0)
      in
      let ev = L.Relax.evaluate m lambda in
      ev.L.Relax.value <= float_of_int (optimum m) +. 1e-6)

let prop_dual_feasible_value_equals_lagrangian =
  QCheck.Test.make ~name:"dual-feasible m: z_LP(m) = w(m)" ~count:150 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let da = L.Dual_ascent.run m in
      let ev = L.Relax.evaluate m da.L.Dual_ascent.m in
      Float.abs (ev.L.Relax.value -. da.L.Dual_ascent.value) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Dual ascent                                                        *)
(* ------------------------------------------------------------------ *)

let prop_dual_ascent_feasible =
  QCheck.Test.make ~name:"dual ascent output is dual feasible" ~count:200 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let da = L.Dual_ascent.run m in
      L.Relax.dual_feasible m da.L.Dual_ascent.m)

let prop_dual_ascent_bound =
  QCheck.Test.make ~name:"dual ascent <= optimum" ~count:200 TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      (L.Dual_ascent.run m).L.Dual_ascent.value <= float_of_int (optimum m) +. 1e-6)

let prop_dual_ascent_dominates_mis =
  (* Proposition 1: LB_MIS <= LB_DA always *)
  QCheck.Test.make ~name:"dual ascent >= MIS bound" ~count:200 TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let mis = (Mis_bound.compute m).Mis_bound.bound in
      (L.Dual_ascent.run m).L.Dual_ascent.value >= float_of_int mis -. 1e-6)

let test_dual_ascent_fig1 () =
  let m = TS.fig1_matrix () in
  let da = L.Dual_ascent.run m in
  check "dual feasible" true (L.Relax.dual_feasible m da.L.Dual_ascent.m);
  check "beats MIS" true (da.L.Dual_ascent.value >= 2. -. 1e-9)

let prop_uniform_dual_integer_rounds_to_independent_set =
  (* under uniform costs an integer dual solution is an independent set;
     dual ascent with uniform costs produces 0/1 values *)
  QCheck.Test.make ~name:"uniform costs: dual ascent is 0/1" ~count:150 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed ~uniform:true seed in
      let da = L.Dual_ascent.run m in
      Array.for_all
        (fun v -> Float.abs v < 1e-9 || Float.abs (v -. 1.) < 1e-9)
        da.L.Dual_ascent.m)

(* ------------------------------------------------------------------ *)
(* Lagrangian greedy                                                  *)
(* ------------------------------------------------------------------ *)

let prop_lag_greedy_feasible =
  QCheck.Test.make ~name:"lagrangian greedy covers" ~count:150 TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let da = L.Dual_ascent.run m in
      let rc = L.Relax.lagrangian_costs m da.L.Dual_ascent.m in
      List.for_all
        (fun rule ->
          let sol = L.Lag_greedy.run ~rule m ~reduced_costs:rc in
          Matrix.covers m sol)
        Greedy.all_rules)

(* ------------------------------------------------------------------ *)
(* Subgradient                                                        *)
(* ------------------------------------------------------------------ *)

let prop_subgradient_bounds_bracket_optimum =
  QCheck.Test.make ~name:"subgradient: LB <= opt <= incumbent" ~count:100 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let opt = optimum m in
      let sg = L.Subgradient.run m in
      Matrix.covers m sg.L.Subgradient.best_solution
      && sg.L.Subgradient.best_cost >= opt
      && sg.L.Subgradient.lower_bound <= float_of_int opt +. 1e-6)

let prop_subgradient_beats_dual_ascent =
  (* Proposition 1: a properly initialised Lagrangian bound dominates the
     dual-ascent bound (it starts there and only improves) *)
  QCheck.Test.make ~name:"subgradient LB >= dual ascent LB" ~count:100 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let da = (L.Dual_ascent.run m).L.Dual_ascent.value in
      let sg = L.Subgradient.run m in
      sg.L.Subgradient.lower_bound >= da -. 1e-6)

let prop_subgradient_proof_is_sound =
  QCheck.Test.make ~name:"proven_optimal implies truly optimal" ~count:100 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let sg = L.Subgradient.run m in
      (not sg.L.Subgradient.proven_optimal) || sg.L.Subgradient.best_cost = optimum m)

let test_subgradient_c5 () =
  (* C5: LP bound 2.5 → ⌈LB⌉ = 3 = optimum; subgradient should prove it *)
  let m = TS.c5_matrix () in
  let sg = L.Subgradient.run m in
  Alcotest.(check int) "optimum 3" 3 sg.L.Subgradient.best_cost;
  check "lb reaches 2.5-ish" true (sg.L.Subgradient.lower_bound > 2.0);
  check "proven" true sg.L.Subgradient.proven_optimal

let test_subgradient_fig1_hierarchy () =
  (* the full Figure-1 story: MIS=1 < DA=2 <= Lagrangian LB <= 2.5 < OPT=3 *)
  let m = TS.fig1_matrix () in
  let mis = (Mis_bound.compute m).Mis_bound.bound in
  let da = (L.Dual_ascent.run m).L.Dual_ascent.value in
  let sg = L.Subgradient.run m in
  Alcotest.(check int) "MIS 1" 1 mis;
  check "DA >= 2" true (da >= 2. -. 1e-9);
  check "LB >= DA" true (sg.L.Subgradient.lower_bound >= da -. 1e-6);
  check "LB <= 2.5" true (sg.L.Subgradient.lower_bound <= 2.5 +. 1e-6);
  Alcotest.(check int) "optimum 3" 3 sg.L.Subgradient.best_cost

let test_subgradient_empty () =
  let m = Matrix.create ~n_cols:2 [] in
  let sg = L.Subgradient.run m in
  Alcotest.(check int) "cost 0" 0 sg.L.Subgradient.best_cost;
  check "proven" true sg.L.Subgradient.proven_optimal

(* ------------------------------------------------------------------ *)
(* Exact LP relaxation                                                *)
(* ------------------------------------------------------------------ *)

let test_lp_known_values () =
  let lp m = (L.Lp.solve m).L.Lp.value in
  Alcotest.(check (float 1e-6)) "c5" 2.5 (lp (TS.c5_matrix ()));
  Alcotest.(check (float 1e-6)) "fig1" 2.5 (lp (TS.fig1_matrix ()));
  (* a totally unimodular instance: LP = IP *)
  let interval = Matrix.create ~n_cols:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2 ] ] in
  Alcotest.(check (float 1e-6)) "interval" 2. (lp interval)

let prop_lp_certificate =
  QCheck.Test.make ~name:"LP solution carries a valid certificate" ~count:150
    TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      L.Lp.check m (L.Lp.solve m))

let prop_proposition1_chain =
  (* the full bound hierarchy: MIS <= DA <= subgradient LB <= LP <= OPT *)
  QCheck.Test.make ~name:"Proposition 1: MIS <= DA <= SG <= LP <= OPT" ~count:80
    TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let mis = float_of_int (Mis_bound.compute m).Mis_bound.bound in
      let da = (L.Dual_ascent.run m).L.Dual_ascent.value in
      let sg = (L.Subgradient.run m).L.Subgradient.lower_bound in
      let lp = (L.Lp.solve m).L.Lp.value in
      let opt = float_of_int (optimum m) in
      mis <= da +. 1e-6 && da <= lp +. 1e-6 && sg <= lp +. 1e-6 && lp <= opt +. 1e-6)

let prop_lp_dual_is_valid_multiplier =
  (* any optimal dual is an optimal Lagrangian multiplier vector (§3.3) *)
  QCheck.Test.make ~name:"LP dual evaluates to the LP value as lambda" ~count:80
    TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let r = L.Lp.solve m in
      let clipped = Array.map (fun x -> Float.max x 0.) r.L.Lp.dual in
      let ev = L.Relax.evaluate m clipped in
      Float.abs (ev.L.Relax.value -. r.L.Lp.value) < 1e-6)

let prop_lp_empty_matrix () =
  let m = Matrix.create ~n_cols:3 [] in
  Alcotest.(check (float 0.)) "empty LP" 0. (L.Lp.solve m).L.Lp.value

(* ------------------------------------------------------------------ *)
(* Pricing                                                            *)
(* ------------------------------------------------------------------ *)

let prop_pricing_bounds_valid =
  QCheck.Test.make ~name:"pricing: LB and incumbent bracket the optimum" ~count:60
    TS.arb_seed (fun seed ->
      let m = TS.medium_matrix_of_seed seed in
      let out = L.Pricing.run m in
      let e = Exact.solve m in
      Matrix.covers m out.L.Subgradient.best_solution
      && ((not e.Exact.optimal)
         || (out.L.Subgradient.best_cost >= e.Exact.cost
            && out.L.Subgradient.lower_bound <= float_of_int e.Exact.cost +. 1e-6)))

let prop_pricing_close_to_plain =
  (* the priced bound must not collapse: within 10% of the full-matrix
     subgradient bound on these sizes *)
  QCheck.Test.make ~name:"pricing bound close to the full bound" ~count:30 TS.arb_seed
    (fun seed ->
      let m = TS.medium_matrix_of_seed seed in
      let plain = (L.Subgradient.run m).L.Subgradient.lower_bound in
      let priced = (L.Pricing.run m).L.Subgradient.lower_bound in
      priced >= (0.9 *. plain) -. 1e-6)

let test_pricing_empty () =
  let m = Matrix.create ~n_cols:2 [] in
  Alcotest.(check int) "cost 0" 0 (L.Pricing.run m).L.Subgradient.best_cost

(* ------------------------------------------------------------------ *)
(* Penalties                                                          *)
(* ------------------------------------------------------------------ *)

(* Oracle check: a forced-in column belongs to some optimal solution
   whenever the incumbent is beatable; a forced-out column is absent from
   every solution strictly better than z_best.  We verify the contrapositive
   with brute force: removing a forced-in column may not allow a solution
   cheaper than z_best; forcing a forced-out column in may not either. *)
let penalties_sound m z_best (o : L.Penalties.outcome) =
  let n = Matrix.n_cols m in
  let all_covers =
    (* enumerate all covers with cost < z_best *)
    let acc = ref [] in
    for mask = 0 to (1 lsl n) - 1 do
      let cols = List.filter (fun j -> mask land (1 lsl j) <> 0) (List.init n Fun.id) in
      if Matrix.cost_of m cols < z_best && Matrix.covers m cols then acc := cols :: !acc
    done;
    !acc
  in
  List.for_all
    (fun j -> List.for_all (fun sol -> List.mem j sol) all_covers)
    o.L.Penalties.forced_in
  && List.for_all
       (fun j -> List.for_all (fun sol -> not (List.mem j sol)) all_covers)
       o.L.Penalties.forced_out

let prop_lagrangian_penalties_sound =
  QCheck.Test.make ~name:"lagrangian penalties are sound" ~count:150 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let sg = L.Subgradient.run m in
      let z_best = sg.L.Subgradient.best_cost in
      let o =
        L.Penalties.lagrangian m ~lp_value:sg.L.Subgradient.lower_bound
          ~reduced_costs:sg.L.Subgradient.reduced_costs ~z_best
      in
      penalties_sound m z_best o)

let prop_dual_penalties_sound =
  QCheck.Test.make ~name:"dual penalties are sound" ~count:100 TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let z_best = optimum m + 1 in
      let o = L.Penalties.dual m ~z_best in
      penalties_sound m z_best o)

let test_penalties_apply () =
  let m = TS.fig1_matrix () in
  (* cook an outcome by hand: force col 5 out, col 0 in *)
  let o = { L.Penalties.forced_in = [ 0 ]; forced_out = [ 5 ] } in
  match L.Penalties.apply m o with
  | None -> Alcotest.fail "expected feasible reduction"
  | Some (m', ids) ->
    Alcotest.(check (list int)) "ids" [ 0 ] ids;
    check "rows shrank" true (Matrix.n_rows m' < Matrix.n_rows m);
    check "col 5 gone" true (Matrix.col_index_of_id m' 5 = None)

(* ------------------------------------------------------------------ *)
(* Fixing                                                             *)
(* ------------------------------------------------------------------ *)

let test_fixing_sigma_and_pick () =
  let m = TS.c5_matrix () in
  let rc = [| 0.5; 0.1; 0.9; 0.2; 0.7 |] in
  let mu = [| 0.9; 0.1; 0.0; 0.8; 0.3 |] in
  let sigma = L.Fixing.sigma ~reduced_costs:rc ~mu () in
  (* σ = c̃ − 2μ *)
  Alcotest.(check (float 1e-9)) "sigma0" (-1.3) sigma.(0);
  let best = L.Fixing.best_columns ~sigma ~k:2 in
  Alcotest.(check (list int)) "two best" [ 3; 0 ] best;
  let j = L.Fixing.pick ~best_cols:1 ~rand:(fun _ -> 0) m ~reduced_costs:rc ~mu in
  Alcotest.(check int) "deterministic pick" 3 j

let test_fixing_promising () =
  let m = TS.c5_matrix () in
  let rc = [| 0.0005; 0.5; -0.2; 0.001; 0.002 |] in
  let mu = [| 1.0; 1.0; 0.9995; 0.5; 1.0 |] in
  let p = L.Fixing.promising m ~reduced_costs:rc ~mu in
  Alcotest.(check (list int)) "promising" [ 0; 2 ] p

let () =
  Alcotest.run "lagrangian"
    [
      ( "relax",
        [
          Alcotest.test_case "zero multipliers" `Quick test_relax_zero_multipliers;
          Alcotest.test_case "value formula" `Quick test_relax_value_formula;
          QCheck_alcotest.to_alcotest prop_lagrangian_value_is_lower_bound;
          QCheck_alcotest.to_alcotest prop_dual_feasible_value_equals_lagrangian;
        ] );
      ( "dual ascent",
        [
          QCheck_alcotest.to_alcotest prop_dual_ascent_feasible;
          QCheck_alcotest.to_alcotest prop_dual_ascent_bound;
          QCheck_alcotest.to_alcotest prop_dual_ascent_dominates_mis;
          Alcotest.test_case "fig1" `Quick test_dual_ascent_fig1;
          QCheck_alcotest.to_alcotest prop_uniform_dual_integer_rounds_to_independent_set;
        ] );
      ("lag greedy", [ QCheck_alcotest.to_alcotest prop_lag_greedy_feasible ]);
      ( "subgradient",
        [
          QCheck_alcotest.to_alcotest prop_subgradient_bounds_bracket_optimum;
          QCheck_alcotest.to_alcotest prop_subgradient_beats_dual_ascent;
          QCheck_alcotest.to_alcotest prop_subgradient_proof_is_sound;
          Alcotest.test_case "c5" `Quick test_subgradient_c5;
          Alcotest.test_case "fig1 hierarchy" `Quick test_subgradient_fig1_hierarchy;
          Alcotest.test_case "empty" `Quick test_subgradient_empty;
        ] );
      ( "lp",
        [
          Alcotest.test_case "known values" `Quick test_lp_known_values;
          QCheck_alcotest.to_alcotest prop_lp_certificate;
          QCheck_alcotest.to_alcotest prop_proposition1_chain;
          QCheck_alcotest.to_alcotest prop_lp_dual_is_valid_multiplier;
          Alcotest.test_case "empty matrix" `Quick prop_lp_empty_matrix;
        ] );
      ( "pricing",
        [
          QCheck_alcotest.to_alcotest prop_pricing_bounds_valid;
          QCheck_alcotest.to_alcotest prop_pricing_close_to_plain;
          Alcotest.test_case "empty" `Quick test_pricing_empty;
        ] );
      ( "penalties",
        [
          QCheck_alcotest.to_alcotest prop_lagrangian_penalties_sound;
          QCheck_alcotest.to_alcotest prop_dual_penalties_sound;
          Alcotest.test_case "apply" `Quick test_penalties_apply;
        ] );
      ( "fixing",
        [
          Alcotest.test_case "sigma and pick" `Quick test_fixing_sigma_and_pick;
          Alcotest.test_case "promising" `Quick test_fixing_promising;
        ] );
    ]
