(* Tests for multi-output prime generation and shared-product covering:
   primality against a brute-force oracle, sharing really paying off
   versus independent per-output minimisation, and the PLA round trip. *)

module Cube = Logic.Cube
module Cover = Logic.Cover
module Multi = Logic.Multi
module Pla = Logic.Pla

let check = Alcotest.(check bool)

let show_primes ps =
  String.concat "; " (List.map (Fmt.to_to_string Multi.pp_prime) ps)

(* the textbook sharing example: f0 = ab, f1 = ab + c — the product ab can
   feed both outputs *)
let sharing_pla =
  Pla.parse ".i 3\n.o 2\n.type fd\n11- 11\n--1 01\n.e\n"

let test_sharing_primes () =
  let ps = Multi.primes sharing_pla in
  check "ab tagged with both outputs" true
    (List.exists
       (fun p ->
         Cube.to_string p.Multi.cube = "11-" && p.Multi.outputs = [ 0; 1 ])
       ps);
  List.iter (fun p -> check "implicant" true (Multi.is_implicant sharing_pla p)) ps

let test_sharing_solution () =
  let r, bridge = Scg.solve_pla_multi sharing_pla in
  (* two products suffice: ab (both outputs) and c (output 1) *)
  Alcotest.(check int) "two shared products" 2 r.Scg.cost;
  check "proven" true r.Scg.proven_optimal;
  check "verified" true (Covering.From_logic.verify_multi bridge r.Scg.solution)

let test_sharing_beats_independent () =
  (* an instance where per-output minimisation needs strictly more rows:
     f0 = ab+cd, f1 = ab+c'd' — ab shared *)
  let pla = Pla.parse ".i 4\n.o 2\n.type fd\n11-- 11\n--11 10\n--00 01\n.e\n" in
  let shared, _ = Scg.solve_pla_multi pla in
  let independent =
    List.fold_left
      (fun acc k ->
        let r, _ = Scg.solve_pla pla ~output:k in
        acc + r.Scg.cost)
      0 [ 0; 1 ]
  in
  Alcotest.(check int) "shared: 3 products" 3 shared.Scg.cost;
  Alcotest.(check int) "independent: 4 products" 4 independent

let random_pla seed =
  let rng = Random.State.make [| seed |] in
  let ni = 3 + Random.State.int rng 2 in
  let no = 2 + Random.State.int rng 2 in
  let n_rows = 2 + Random.State.int rng 5 in
  let row _ =
    let input =
      String.init ni (fun _ ->
          match Random.State.int rng 3 with
          | 0 -> '0'
          | 1 -> '1'
          | _ -> '-')
    in
    let output =
      String.init no (fun _ ->
          match Random.State.int rng 4 with
          | 0 | 1 -> '1'
          | 2 -> '0'
          | _ -> '-')
    in
    input ^ " " ^ output
  in
  let body = String.concat "\n" (List.init n_rows row) in
  Pla.parse (Printf.sprintf ".i %d\n.o %d\n.type fd\n%s\n.e\n" ni no body)

let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let prop_primes_match_brute_force =
  QCheck.Test.make ~name:"multi-output primes = brute force" ~count:60 arb_seed
    (fun seed ->
      let pla = random_pla seed in
      let fast = Multi.primes pla in
      let brute = Multi.brute_force_primes pla in
      if show_primes fast <> show_primes brute then
        QCheck.Test.fail_reportf "fast: %s@.brute: %s" (show_primes fast)
          (show_primes brute)
      else true)

let prop_solution_covers_all_rows =
  QCheck.Test.make ~name:"multi solution covers every (minterm, output)" ~count:30
    arb_seed (fun seed ->
      let pla = random_pla seed in
      match Covering.From_logic.build_multi pla with
      | exception Invalid_argument _ -> true (* empty ON everywhere *)
      | bridge ->
        let r = Scg.solve bridge.Covering.From_logic.mmatrix in
        Covering.From_logic.verify_multi bridge r.Scg.solution)

let prop_shared_never_worse =
  QCheck.Test.make ~name:"shared cost <= sum of per-output optima" ~count:25 arb_seed
    (fun seed ->
      let pla = random_pla seed in
      match Covering.From_logic.build_multi pla with
      | exception Invalid_argument _ -> true
      | bridge ->
        let shared =
          (Covering.Exact.solve bridge.Covering.From_logic.mmatrix).Covering.Exact.cost
        in
        let independent =
          List.fold_left
            (fun acc k ->
              let on = Pla.onset pla k and dc = Pla.dcset pla k in
              if Cover.is_empty on then acc
              else begin
                let b = Covering.From_logic.build ~on ~dc () in
                if Covering.Matrix.n_rows b.Covering.From_logic.matrix = 0 then acc
                else acc + (Covering.Exact.solve b.Covering.From_logic.matrix).Covering.Exact.cost
              end)
            0
            (List.init pla.Pla.no Fun.id)
        in
        shared <= independent)

let test_pla_round_trip () =
  let r, bridge = Scg.solve_pla_multi sharing_pla in
  let out = Covering.From_logic.pla_of_multi_solution sharing_pla bridge r.Scg.solution in
  Alcotest.(check int) "row count = cost" r.Scg.cost (List.length out.Pla.rows);
  (* re-parse and check each output's care behaviour is preserved *)
  let out = Pla.parse (Pla.to_string out) in
  List.iter
    (fun k ->
      let spec_on = Pla.onset sharing_pla k and spec_dc = Pla.dcset sharing_pla k in
      let got = Pla.onset out k in
      let inside =
        Cover.covers (Cover.union spec_on spec_dc) got
      in
      let covers = Cover.covers (Cover.union got spec_dc) spec_on in
      check (Printf.sprintf "output %d preserved" k) true (inside && covers))
    [ 0; 1 ]

let test_multi_guards () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  (* 17 outputs exceed the subset-enumeration bound *)
  let wide =
    let out17 = String.make 17 '1' in
    Pla.parse (Printf.sprintf ".i 2\n.o 17\n.type fd\n11 %s\n.e\n" out17)
  in
  check "too many outputs" true (raises (fun () -> ignore (Multi.primes wide)));
  (* empty ON everywhere *)
  let empty = Pla.parse ".i 2\n.o 1\n.type fd\n11 0\n.e\n" in
  check "no rows" true
    (raises (fun () -> ignore (Covering.From_logic.build_multi empty)))

let test_realised_cost_merges () =
  let a = { Multi.cube = Cube.of_string "11-"; outputs = [ 0 ] } in
  let b = { Multi.cube = Cube.of_string "11-"; outputs = [ 1 ] } in
  let c = { Multi.cube = Cube.of_string "--1"; outputs = [ 1 ] } in
  Alcotest.(check int) "shared cube counted once" 2 (Multi.realised_cost [ a; b; c ])

let () =
  Alcotest.run "multi"
    [
      ( "primes",
        [
          Alcotest.test_case "sharing primes" `Quick test_sharing_primes;
          QCheck_alcotest.to_alcotest prop_primes_match_brute_force;
        ] );
      ( "covering",
        [
          Alcotest.test_case "sharing solution" `Quick test_sharing_solution;
          Alcotest.test_case "beats independent" `Quick test_sharing_beats_independent;
          QCheck_alcotest.to_alcotest prop_solution_covers_all_rows;
          QCheck_alcotest.to_alcotest prop_shared_never_worse;
          Alcotest.test_case "pla round trip" `Quick test_pla_round_trip;
          Alcotest.test_case "realised cost" `Quick test_realised_cost_merges;
          Alcotest.test_case "guards" `Quick test_multi_guards;
        ] );
    ]
