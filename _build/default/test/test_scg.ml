(* End-to-end tests for the ZDD_SCG solver: feasibility and bound
   soundness on random matrices (exact solver as oracle), optimality on
   structured instances, and the PLA → primes → covering → solution
   pipeline. *)

open Covering
module TS = Test_support

let check = Alcotest.(check bool)

let optimum m = Matrix.cost_of m (Exact.brute_force m)

let fast_config =
  {
    Scg.Config.default with
    Scg.Config.num_iter = 3;
    subgradient = { Lagrangian.Subgradient.default_config with max_steps = 120 };
  }

let prop_scg_feasible_and_bracketed =
  QCheck.Test.make ~name:"scg: cover, LB <= opt <= cost" ~count:80 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let opt = optimum m in
      let r = Scg.solve ~config:fast_config m in
      Matrix.covers m r.Scg.solution
      && Matrix.cost_of m r.Scg.solution = r.Scg.cost
      && r.Scg.cost >= opt
      && r.Scg.lower_bound <= opt)

let prop_scg_proof_sound =
  QCheck.Test.make ~name:"scg: proven_optimal implies optimal" ~count:80 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let r = Scg.solve ~config:fast_config m in
      (not r.Scg.proven_optimal) || r.Scg.cost = optimum m)

let prop_scg_hits_optimum_small =
  (* on these tiny instances the heuristic should essentially always land
     on the optimum (the paper's experience on the easy set) *)
  QCheck.Test.make ~name:"scg finds the optimum on small instances" ~count:60
    TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let r = Scg.solve ~config:fast_config m in
      r.Scg.cost = optimum m)

let prop_scg_uniform =
  QCheck.Test.make ~name:"scg on uniform costs" ~count:60 TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed ~uniform:true seed in
      let r = Scg.solve ~config:fast_config m in
      Matrix.covers m r.Scg.solution && r.Scg.cost >= optimum m)

let test_scg_c5 () =
  let r = Scg.solve (TS.c5_matrix ()) in
  Alcotest.(check int) "cost 3" 3 r.Scg.cost;
  check "proven" true r.Scg.proven_optimal;
  Alcotest.(check int) "lb 3" 3 r.Scg.lower_bound

let test_scg_fig1 () =
  let r = Scg.solve (TS.fig1_matrix ()) in
  Alcotest.(check int) "cost 3" 3 r.Scg.cost;
  check "proven" true r.Scg.proven_optimal

let test_scg_fully_reducible () =
  (* reductions alone solve it; no subgradient phase should be needed *)
  let m = Matrix.create ~n_cols:3 [ [ 2 ]; [ 1; 2 ]; [ 0; 1 ] ] in
  let r = Scg.solve m in
  check "proven" true r.Scg.proven_optimal;
  Alcotest.(check int) "no iterations" 0 r.Scg.stats.Scg.Stats.iterations;
  (* no constructive run ever ran, let alone improved the incumbent: the
     paper's MaxIter column must read 0, not a phantom 1 *)
  Alcotest.(check int) "best_iteration 0" 0 r.Scg.stats.Scg.Stats.best_iteration

let test_best_iteration_bounded () =
  (* best_iteration is 1-based and can never exceed the number of runs
     actually performed; 0 means the greedy seed was never beaten *)
  List.iter
    (fun name ->
      let m = Benchsuite.Registry.matrix (Benchsuite.Registry.find name) in
      let r = Scg.solve ~config:fast_config m in
      let s = r.Scg.stats in
      check
        (name ^ ": 0 <= best_iteration <= iterations")
        true
        (s.Scg.Stats.best_iteration >= 0
        && s.Scg.Stats.best_iteration <= s.Scg.Stats.iterations))
    [ "bench1"; "t1"; "exam" ]

(* ------------------------------------------------------------------ *)
(* Warm-start memory                                                  *)
(* ------------------------------------------------------------------ *)

let test_warm_lambda0 () =
  let open Scg.Warm in
  let m2 = Matrix.create ~n_cols:2 [ [ 0 ]; [ 1 ] ] in
  let w = create () in
  check "empty memory cold-starts" true (lambda0 w m2 = None);
  store_rows w m2 [| 1.5; 2.5 |];
  check "full hit" true (lambda0 w m2 = Some [| 1.5; 2.5 |]);
  (* the regression: a matrix with a row the memory has never seen must
     cold-start even though the memory is non-empty — the old guard
     ([!missing && length = 0]) could never fire and handed back a
     zero-padded vector instead *)
  let m3 =
    Matrix.of_parts ~n_cols:2
      ~rows:[| [| 0 |]; [| 1 |]; [| 0; 1 |] |]
      ~cost:[| 1; 1 |] ~row_ids:[| 0; 1; 7 |] ~col_ids:[| 0; 1 |]
  in
  check "partial miss cold-starts" true (lambda0 w m3 = None);
  (* values are keyed by row identifier, so re-indexed submatrices still
     hit: same ids in another order *)
  let m2' =
    Matrix.of_parts ~n_cols:2
      ~rows:[| [| 1 |]; [| 0 |] |]
      ~cost:[| 1; 1 |] ~row_ids:[| 1; 0 |] ~col_ids:[| 0; 1 |]
  in
  check "keyed by id" true (lambda0 w m2' = Some [| 2.5; 1.5 |])

let test_warm_mu0 () =
  let open Scg.Warm in
  let m2 = Matrix.create ~n_cols:2 [ [ 0 ]; [ 1 ] ] in
  let w = create () in
  check "empty memory" true (mu0 w m2 = None);
  store_cols w m2 [| 0.25; 0.75 |];
  check "full hit" true (mu0 w m2 = Some [| 0.25; 0.75 |]);
  (* unlike λ, a missing column zero-fills: μ = 0 is a meaningful
     "column unused" estimate *)
  let m3 =
    Matrix.of_parts ~n_cols:3
      ~rows:[| [| 0 |]; [| 1 |]; [| 2 |] |]
      ~cost:[| 1; 1; 1 |] ~row_ids:[| 0; 1; 2 |] ~col_ids:[| 0; 1; 9 |]
  in
  check "miss zero-fills" true (mu0 w m3 = Some [| 0.25; 0.75; 0. |])

let test_scg_partitioned_core () =
  (* two disjoint odd cycles: componentwise bounds compose — each block
     proves ceil(2.5) = 3, so the total 6 is proven even though the joint
     LP bound (5) would not reach it *)
  let rows5 base = List.init 5 (fun i -> [ base + i; base + ((i + 1) mod 5) ]) in
  let m = Matrix.create ~n_cols:10 (rows5 0 @ rows5 5) in
  let r = Scg.solve m in
  Alcotest.(check int) "cost 6" 6 r.Scg.cost;
  Alcotest.(check int) "lb 6" 6 r.Scg.lower_bound;
  check "proven via partitioning" true r.Scg.proven_optimal

let test_scg_deterministic () =
  let m = TS.medium_matrix_of_seed 77 in
  let r1 = Scg.solve m and r2 = Scg.solve m in
  Alcotest.(check int) "same cost" r1.Scg.cost r2.Scg.cost;
  Alcotest.(check (list int)) "same solution" r1.Scg.solution r2.Scg.solution;
  let other_seed = { Scg.Config.default with Scg.Config.seed = 999 } in
  let r3 = Scg.solve ~config:other_seed m in
  check "other seed still feasible" true (Matrix.covers m r3.Scg.solution)

let test_scg_medium_vs_exact () =
  List.iter
    (fun seed ->
      let m = TS.medium_matrix_of_seed seed in
      let e = Exact.solve m in
      let r = Scg.solve m in
      check "feasible" true (Matrix.covers m r.Scg.solution);
      check "lb sound" true (r.Scg.lower_bound <= e.Exact.cost);
      (* heuristic stays close: within one unit on these sizes *)
      check "near optimal" true (r.Scg.cost <= e.Exact.cost + 1))
    [ 11; 23; 37; 58; 71 ]

let test_scg_unused_columns () =
  (* columns covering nothing must be ignored, not crash anything *)
  let m = Matrix.create ~n_cols:6 [ [ 0; 1 ]; [ 1; 5 ] ] in
  (* columns 2, 3, 4 cover no row *)
  let r = Scg.solve m in
  check "covers" true (Matrix.covers m r.Scg.solution);
  Alcotest.(check int) "cost 1" 1 r.Scg.cost;
  check "proven" true r.Scg.proven_optimal

let test_scg_single_row () =
  let m = Matrix.create ~cost:[| 5; 2; 9 |] ~n_cols:3 [ [ 0; 1; 2 ] ] in
  let r = Scg.solve m in
  Alcotest.(check (list int)) "cheapest column" [ 1 ] r.Scg.solution;
  Alcotest.(check int) "cost 2" 2 r.Scg.cost

let test_scg_rejects_reindexed () =
  let m = TS.small_matrix_of_seed 3 in
  let sub =
    Matrix.submatrix m
      ~keep_rows:(Array.make (Matrix.n_rows m) true)
      ~keep_cols:(Array.init (Matrix.n_cols m) (fun j -> j <> 0))
  in
  match Scg.solve sub with
  | exception Invalid_argument _ -> ()
  | _ ->
    (* only fails if column 0 covered nothing; then ids are still 0.. *)
    check "ok" true true

(* ------------------------------------------------------------------ *)
(* Logic pipeline                                                     *)
(* ------------------------------------------------------------------ *)

let test_scg_logic_pipeline () =
  (* f = majority(x0,x1,x2): minimal SOP is 3 products *)
  let on =
    Logic.Cover.of_cubes 3
      [
        Logic.Cube.of_string "11-";
        Logic.Cube.of_string "1-1";
        Logic.Cube.of_string "-11";
      ]
  in
  let r, bridge = Scg.solve_logic ~on ~dc:(Logic.Cover.empty 3) () in
  Alcotest.(check int) "three products" 3 r.Scg.cost;
  check "proven" true r.Scg.proven_optimal;
  let cover = From_logic.cover_of_solution bridge r.Scg.solution in
  check "semantics" true (Logic.Cover.equal_semantics cover on)

let test_scg_pla_pipeline () =
  let pla =
    Logic.Pla.parse ".i 4\n.o 1\n.type fd\n1111 1\n0000 1\n11-- -\n--11 -\n.e\n"
  in
  let r, bridge = Scg.solve_pla pla ~output:0 in
  check "feasible" true
    (From_logic.verify_solution bridge r.Scg.solution);
  check "at most 2 products" true (r.Scg.cost <= 2)

let test_scg_implicit_pipeline () =
  (* 28 inputs — impossible for the minterm-expansion path *)
  let n = 28 in
  let on =
    Logic.Cover.of_cubes n
      [
        Logic.Cube.of_literals n [ (0, true); (5, true) ];
        Logic.Cube.of_literals n [ (0, false); (9, true) ];
        Logic.Cube.of_literals n [ (5, true); (9, true) ];
      ]
  in
  let r, bridge = Scg.solve_logic_implicit ~on ~dc:(Logic.Cover.empty n) () in
  Alcotest.(check int) "two products" 2 r.Scg.cost;
  check "proven" true r.Scg.proven_optimal;
  check "verified by BDD" true (From_logic.verify_implicit bridge r.Scg.solution)

let test_scg_xor_pipeline () =
  (* xor of 3 variables: every minterm is its own prime → cost 4 *)
  let cubes =
    [ "001"; "010"; "100"; "111" ] |> List.map Logic.Cube.of_string
  in
  let on = Logic.Cover.of_cubes 3 cubes in
  let r, _ = Scg.solve_logic ~on ~dc:(Logic.Cover.empty 3) () in
  Alcotest.(check int) "four products" 4 r.Scg.cost;
  check "proven" true r.Scg.proven_optimal

let () =
  Alcotest.run "scg"
    [
      ( "matrix solving",
        [
          QCheck_alcotest.to_alcotest prop_scg_feasible_and_bracketed;
          QCheck_alcotest.to_alcotest prop_scg_proof_sound;
          QCheck_alcotest.to_alcotest prop_scg_hits_optimum_small;
          QCheck_alcotest.to_alcotest prop_scg_uniform;
          Alcotest.test_case "c5" `Quick test_scg_c5;
          Alcotest.test_case "fig1" `Quick test_scg_fig1;
          Alcotest.test_case "fully reducible" `Quick test_scg_fully_reducible;
          Alcotest.test_case "best_iteration bounded" `Quick
            test_best_iteration_bounded;
          Alcotest.test_case "warm lambda0" `Quick test_warm_lambda0;
          Alcotest.test_case "warm mu0" `Quick test_warm_mu0;
          Alcotest.test_case "partitioned core" `Quick test_scg_partitioned_core;
          Alcotest.test_case "deterministic" `Quick test_scg_deterministic;
          Alcotest.test_case "medium vs exact" `Slow test_scg_medium_vs_exact;
          Alcotest.test_case "reindex guard" `Quick test_scg_rejects_reindexed;
          Alcotest.test_case "unused columns" `Quick test_scg_unused_columns;
          Alcotest.test_case "single row" `Quick test_scg_single_row;
        ] );
      ( "logic pipeline",
        [
          Alcotest.test_case "majority" `Quick test_scg_logic_pipeline;
          Alcotest.test_case "pla" `Quick test_scg_pla_pipeline;
          Alcotest.test_case "xor3" `Quick test_scg_xor_pipeline;
          Alcotest.test_case "implicit wide" `Quick test_scg_implicit_pipeline;
        ] );
    ]
