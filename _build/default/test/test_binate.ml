(* Tests for the binate covering extension: solver against brute force on
   random clause systems, unate embedding against the unate exact solver,
   and the classic infeasible/implication corner cases. *)

module TS = Test_support

let check = Alcotest.(check bool)

let random_binate seed =
  let rng = Random.State.make [| seed |] in
  let n_cols = 2 + Random.State.int rng 7 in
  let n_clauses = 1 + Random.State.int rng 10 in
  let clause _ =
    let lits =
      List.filter_map
        (fun j ->
          match Random.State.int rng 4 with
          | 0 -> Some (j, true)
          | 1 -> Some (j, false)
          | _ -> None)
        (List.init n_cols Fun.id)
    in
    let lits = if lits = [] then [ (Random.State.int rng n_cols, true) ] else lits in
    ( List.filter_map (fun (j, pos) -> if pos then Some j else None) lits,
      List.filter_map (fun (j, pos) -> if pos then None else Some j) lits )
  in
  let cost = Array.init n_cols (fun _ -> 1 + Random.State.int rng 4) in
  Binate.create ~cost ~n_cols (List.init n_clauses clause)

let prop_solve_matches_brute_force =
  QCheck.Test.make ~name:"binate B&B = brute force" ~count:200 TS.arb_seed (fun seed ->
      let t = random_binate seed in
      let r = Binate.solve t in
      let bf = Binate.brute_force t in
      r.Binate.optimal
      &&
      match (r.Binate.assignment, bf) with
      | None, None -> true
      | Some a, Some b ->
        Binate.satisfies t a
        && Binate.assignment_cost t a = Binate.assignment_cost t b
        && r.Binate.cost = Binate.assignment_cost t a
      | Some _, None | None, Some _ -> false)

let prop_unate_embedding_agrees =
  QCheck.Test.make ~name:"of_unate agrees with the unate exact solver" ~count:100
    TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let unate_opt = Covering.Matrix.cost_of m (Covering.Exact.brute_force m) in
      let r = Binate.solve (Binate.of_unate m) in
      r.Binate.optimal && r.Binate.cost = unate_opt)

let test_implication_chain () =
  (* x0; x0 → x1; x1 → x2 : all three must be set *)
  let t =
    Binate.create ~n_cols:3 [ ([ 0 ], []); ([ 1 ], [ 0 ]); ([ 2 ], [ 1 ]) ]
  in
  let r = Binate.solve t in
  (match r.Binate.assignment with
  | Some a -> Alcotest.(check (array bool)) "all true" [| true; true; true |] a
  | None -> Alcotest.fail "expected feasible");
  Alcotest.(check int) "cost 3" 3 r.Binate.cost

let test_infeasible () =
  (* x0 and ¬x0 *)
  let t = Binate.create ~n_cols:1 [ ([ 0 ], []); ([], [ 0 ]) ] in
  let r = Binate.solve t in
  check "infeasible" true (r.Binate.assignment = None);
  check "proven" true r.Binate.optimal;
  check "brute agrees" true (Binate.brute_force t = None)

let test_free_negative () =
  (* ¬x0 ∨ ¬x1 alone: the zero assignment is optimal at cost 0 *)
  let t = Binate.create ~cost:[| 5; 7 |] ~n_cols:2 [ ([], [ 0; 1 ]) ] in
  let r = Binate.solve t in
  Alcotest.(check int) "cost 0" 0 r.Binate.cost

let test_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "empty clause" true
    (raises (fun () -> ignore (Binate.create ~n_cols:2 [ ([], []) ])));
  check "tautology" true
    (raises (fun () -> ignore (Binate.create ~n_cols:2 [ ([ 0 ], [ 0 ]) ])));
  check "range" true (raises (fun () -> ignore (Binate.create ~n_cols:2 [ ([ 2 ], []) ])))

let test_node_budget () =
  let t = random_binate 4242 in
  let r = Binate.solve ~max_nodes:1 t in
  check "budget respected" true (r.Binate.nodes <= 2)

let () =
  Alcotest.run "binate"
    [
      ( "solver",
        [
          QCheck_alcotest.to_alcotest prop_solve_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_unate_embedding_agrees;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "free negative" `Quick test_free_negative;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "node budget" `Quick test_node_budget;
        ] );
    ]
