examples/multistart.ml: Benchsuite Covering Format List Printf Scg Sys
