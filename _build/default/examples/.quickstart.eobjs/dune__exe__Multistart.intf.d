examples/multistart.mli:
