examples/covering_demo.ml: Benchsuite Covering Format Lagrangian List Scg Stdlib
