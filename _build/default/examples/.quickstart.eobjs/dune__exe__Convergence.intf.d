examples/convergence.mli:
