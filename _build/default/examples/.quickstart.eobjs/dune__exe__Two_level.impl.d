examples/two_level.ml: Bdd Covering Espresso Format Logic Scg Zdd
