examples/fsm_demo.ml: Array Format Fsm List Logic Scg
