examples/binate_demo.mli:
