examples/convergence.ml: Benchsuite Covering Format Lagrangian List
