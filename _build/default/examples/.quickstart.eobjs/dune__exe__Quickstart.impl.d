examples/quickstart.ml: Covering Fmt Format Lagrangian Scg
