examples/quickstart.mli:
