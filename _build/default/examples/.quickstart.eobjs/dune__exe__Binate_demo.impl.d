examples/binate_demo.ml: Array Benchsuite Binate Format
