examples/fsm_demo.mli:
