examples/two_level.mli:
