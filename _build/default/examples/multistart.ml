(* The multi-start behaviour of ZDD_SCG (paper §4): the first run fixes
   the σ-best column deterministically; later runs draw at random among a
   growing window of BestCol top-rated candidates, exploring solutions a
   depth-first branch-and-bound would only reach much later.

   This example sweeps NumIter and reports how the incumbent improves.

   Run with:  dune exec examples/multistart.exe *)

let () =
  let m =
    Benchsuite.Randucp.cyclic ~name:"multistart-demo" ~n_rows:160 ~n_cols:90 ~k:3 ()
  in
  Format.printf "instance: %dx%d uniform-cost cyclic matrix@.@."
    (Covering.Matrix.n_rows m) (Covering.Matrix.n_cols m);
  let exact = Covering.Exact.solve ~max_nodes:100_000 m in
  Format.printf "exact reference: %d%s@.@." exact.Covering.Exact.cost
    (if exact.Covering.Exact.optimal then " (optimal)" else "H (budget)");
  Format.printf "%8s %8s %8s %10s %10s@." "NumIter" "cost" "LB" "best-at" "T(s)";
  List.iter
    (fun num_iter ->
      let config = { Scg.Config.default with Scg.Config.num_iter } in
      let t0 = Sys.time () in
      let r = Scg.solve ~config m in
      Format.printf "%8d %8s %8d %10d %10.2f@." num_iter
        (Printf.sprintf "%d%s" r.Scg.cost (if r.Scg.proven_optimal then "*" else ""))
        r.Scg.lower_bound r.Scg.stats.Scg.Stats.best_iteration (Sys.time () -. t0))
    [ 1; 2; 3; 5; 8; 12 ];
  Format.printf "@.(the paper's Table 3/4 MaxIter column is the `best-at' run index)@."
