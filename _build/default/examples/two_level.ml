(* Two-level logic minimisation end-to-end: parse a PLA, generate primes
   implicitly, solve the covering problem with ZDD_SCG, and compare with
   the espresso-style heuristic — the paper's headline use case.

   Run with:  dune exec examples/two_level.exe *)

let pla_text =
  (* a 5-input function with a don't-care plane, espresso .pla syntax *)
  ".i 5\n\
   .o 1\n\
   .type fd\n\
   11--- 1\n\
   --11- 1\n\
   ---11 1\n\
   1---1 1\n\
   0-0-0 1\n\
   -10-0 -\n\
   00--1 -\n\
   .e\n"

let () =
  let pla = Logic.Pla.parse pla_text in
  let on = Logic.Pla.onset pla 0 and dc = Logic.Pla.dcset pla 0 in
  Format.printf "input: %d cubes over %d inputs (+%d don't-care cubes)@.@."
    (Logic.Cover.size on) pla.Logic.Pla.ni (Logic.Cover.size dc);

  (* how many primes does the function have?  (computed implicitly) *)
  let primes = Logic.Primes.of_covers ~on ~dc in
  Format.printf "prime implicants: %.0f (ZDD with %d nodes)@.@."
    (Logic.Primes.count primes) (Zdd.size primes);

  (* ZDD_SCG: prime generation + covering, with proven bounds *)
  let result, bridge = Scg.solve_pla pla ~output:0 in
  let cover = Covering.From_logic.cover_of_solution bridge result.Scg.solution in
  Format.printf "ZDD_SCG: %d products%s@.%a@.@." result.Scg.cost
    (if result.Scg.proven_optimal then " (proven minimal)" else "")
    Logic.Cover.pp cover;

  (* the espresso baseline, both modes *)
  let normal = Espresso.minimise ~mode:Espresso.Normal ~on ~dc () in
  let strong = Espresso.minimise ~mode:Espresso.Strong ~on ~dc () in
  Format.printf "espresso normal: %d products / %d literals@." normal.Espresso.cost
    normal.Espresso.literals;
  Format.printf "espresso strong: %d products / %d literals@.@." strong.Espresso.cost
    strong.Espresso.literals;

  (* both implementations must realise the same function on the care set *)
  let care_equal f g =
    let fb = Logic.Cover.to_bdd f and gb = Logic.Cover.to_bdd g in
    let db = Logic.Cover.to_bdd dc in
    Bdd.equal (Bdd.bdiff fb db) (Bdd.bdiff gb db)
  in
  assert (care_equal cover on);
  assert (care_equal normal.Espresso.cover on);
  Format.printf "verified: all results realise the specified function@."
