(* State minimisation of an incompletely specified FSM — the classical
   application of binate covering (the general problem the paper's
   introduction situates unate covering inside).

   The machine below is a fragment of a sequence detector specified only
   on the inputs that can actually occur; the don't-cares let three of
   its five states collapse.

   Run with:  dune exec examples/fsm_demo.exe *)

let kiss_text =
  ".i 1\n\
   .o 1\n\
   .r s0\n\
   0 s0 s1 0\n\
   1 s0 s3 0\n\
   0 s1 s2 0\n\
   1 s1 s0 -\n\
   0 s2 s2 1\n\
   1 s2 s4 0\n\
   0 s3 s2 -\n\
   1 s3 s0 0\n\
   0 s4 s2 1\n\
   1 s4 s4 -\n\
   .e\n"

let () =
  let m = Fsm.Kiss.parse kiss_text in
  Format.printf "specification:@.%a@." Fsm.Machine.pp m;

  (* the compatibility structure the reduction is built on *)
  let t = Fsm.Compat.analyse m in
  Format.printf "incompatible pairs:";
  for s = 0 to Fsm.Machine.n_states m - 1 do
    for u = s + 1 to Fsm.Machine.n_states m - 1 do
      if Fsm.Compat.pairs_incompatible t s u then
        Format.printf " (%s,%s)" m.Fsm.Machine.states.(s) m.Fsm.Machine.states.(u)
    done
  done;
  Format.printf "@.";
  let primes = Fsm.Compat.prime_compatibles t in
  Format.printf "prime compatibles: %d@.@." (List.length primes);

  let r = Fsm.Minimise.minimise m in
  Format.printf "minimised: %d -> %d states (%s)@.@." r.Fsm.Minimise.original_states
    r.Fsm.Minimise.minimised_states
    (if r.Fsm.Minimise.optimal then "proven minimal" else "upper bound");
  Format.printf "%s@." (Fsm.Kiss.to_string r.Fsm.Minimise.machine);

  (* behavioural containment: wherever the spec says something, the
     reduced machine must agree *)
  assert (Fsm.Minimise.simulate_agrees m r.Fsm.Minimise.machine);
  Format.printf "verified: reduced machine realises the specification@.@.";

  (* the rest of the KISS flow: encode the reduced states in binary and
     minimise the next-state/output logic as a multi-output PLA *)
  let pla, logic_r = Fsm.Synth.implement r.Fsm.Minimise.machine in
  Format.printf "synthesised logic: %d product rows%s@.%s@." logic_r.Scg.cost
    (if logic_r.Scg.proven_optimal then " (proven minimal)" else "")
    (Logic.Pla.to_string pla)
