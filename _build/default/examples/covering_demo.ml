(* Pure covering: the paper's machinery on a structured matrix with no
   logic behind it — a Steiner triple system, the classical cyclic-core
   stress test — plus the worked Figure-1 bound ladder and a penalty
   demonstration.

   Run with:  dune exec examples/covering_demo.exe *)

let bound_ladder name m =
  let mis = Covering.Mis_bound.compute m in
  let da = Lagrangian.Dual_ascent.run m in
  let sg = Lagrangian.Subgradient.run m in
  Format.printf "%-12s MIS %2d | dual ascent %5.2f | Lagrangian %6.3f | incumbent %d@."
    name mis.Covering.Mis_bound.bound da.Lagrangian.Dual_ascent.value
    sg.Lagrangian.Subgradient.lower_bound sg.Lagrangian.Subgradient.best_cost

let () =
  (* 1. the Figure-1 ladder: each bound strictly better than the last *)
  Format.printf "== bound hierarchy (Proposition 1) ==@.";
  bound_ladder "fig1" (Benchsuite.Worked.fig1 ());
  bound_ladder "c5" (Benchsuite.Worked.c5 ());
  Format.printf "@.";

  (* 2. a Steiner triple system: 35 triples over 15 points, perfectly
     regular, so no reduction applies — a born cyclic core *)
  Format.printf "== stein15: a born cyclic core ==@.";
  let m = Benchsuite.Steiner.matrix 15 in
  let red = Covering.Reduce.cyclic_core m in
  Format.printf "reductions: %dx%d -> %dx%d (nothing to remove)@."
    (Covering.Matrix.n_rows m) (Covering.Matrix.n_cols m)
    (Covering.Matrix.n_rows red.Covering.Reduce.core)
    (Covering.Matrix.n_cols red.Covering.Reduce.core);
  let r = Scg.solve m in
  let e = Covering.Exact.solve m in
  Format.printf "ZDD_SCG: cost %d (LB %d)%s; exact: %d in %d nodes@.@." r.Scg.cost
    r.Scg.lower_bound
    (if r.Scg.proven_optimal then " proven" else "")
    e.Covering.Exact.cost e.Covering.Exact.nodes;

  (* 3. penalties in action: with a good incumbent, Lagrangian and dual
     penalties fix columns without any branching *)
  Format.printf "== penalty conditions (paper section 3.6) ==@.";
  let m = Benchsuite.Randucp.cyclic ~name:"demo" ~n_rows:40 ~n_cols:25 ~k:3 ~cost_spread:3 () in
  let sg = Lagrangian.Subgradient.run m in
  let pen_lag =
    Lagrangian.Penalties.lagrangian m ~lp_value:sg.Lagrangian.Subgradient.lower_bound
      ~reduced_costs:sg.Lagrangian.Subgradient.reduced_costs
      ~z_best:sg.Lagrangian.Subgradient.best_cost
  in
  let pen_dual = Lagrangian.Penalties.dual m ~z_best:sg.Lagrangian.Subgradient.best_cost in
  Format.printf "incumbent %d, LB %.2f@." sg.Lagrangian.Subgradient.best_cost
    sg.Lagrangian.Subgradient.lower_bound;
  Format.printf "lagrangian penalties: %d forced in, %d forced out@."
    (List.length pen_lag.Lagrangian.Penalties.forced_in)
    (List.length pen_lag.Lagrangian.Penalties.forced_out);
  Format.printf "dual penalties:       %d forced in, %d forced out@."
    (List.length pen_dual.Lagrangian.Penalties.forced_in)
    (List.length pen_dual.Lagrangian.Penalties.forced_out);
  (* penalties are sound: applying them must not lose the optimum *)
  let opt = (Covering.Exact.solve m).Covering.Exact.cost in
  (match
     Lagrangian.Penalties.apply m
       {
         Lagrangian.Penalties.forced_in =
           List.sort_uniq Stdlib.compare
             (pen_lag.Lagrangian.Penalties.forced_in
             @ pen_dual.Lagrangian.Penalties.forced_in);
         forced_out =
           List.sort_uniq Stdlib.compare
             (pen_lag.Lagrangian.Penalties.forced_out
             @ pen_dual.Lagrangian.Penalties.forced_out);
       }
   with
  | None -> Format.printf "penalties prove the incumbent optimal@."
  | Some (m', ids) ->
    let rest = (Covering.Exact.solve m').Covering.Exact.cost in
    let fixed = List.length ids in
    Format.printf "after penalties: %d columns fixed, %dx%d remain; optimum preserved: %b@."
      fixed (Covering.Matrix.n_rows m') (Covering.Matrix.n_cols m')
      (Covering.Matrix.cost_of_ids ~original:m ids + rest <= opt
      || sg.Lagrangian.Subgradient.best_cost = opt))
