(* Binate covering: the generalisation the paper situates UCP inside
   (section 1-2).  Clauses may contain complemented columns, which models
   implications — "if you pick gate A you must also pick its driver B" —
   the structure behind state minimisation and technology mapping.

   Run with:  dune exec examples/binate_demo.exe *)

let () =
  (* A toy technology-mapping flavour: pick implementations for three
     nets.  Columns 0..5 are candidate implementations with costs; the
     clauses say each net needs one implementation, and implementations
     4 and 5 each require column 0 (their shared driver). *)
  let t =
    Binate.create
      ~cost:[| 2; 3; 3; 4; 1; 1 |]
      ~n_cols:6
      [
        ([ 1; 4 ], []) (* net 1: impl 1 or impl 4 *);
        ([ 2; 5 ], []) (* net 2: impl 2 or impl 5 *);
        ([ 3; 4; 5 ], []) (* net 3 *);
        ([ 0 ], [ 4 ]) (* impl 4 -> driver 0 *);
        ([ 0 ], [ 5 ]) (* impl 5 -> driver 0 *);
      ]
  in
  Format.printf "%a@.@." Binate.pp t;
  let r = Binate.solve t in
  (match r.Binate.assignment with
  | Some a ->
    Format.printf "optimal cost %d with columns set:" r.Binate.cost;
    Array.iteri (fun j b -> if b then Format.printf " %d" j) a;
    Format.printf "@."
  | None -> Format.printf "infeasible@.");
  (* the cheap implementations 4 and 5 are worth their shared driver:
     {0, 4, 5} costs 4, beating the driver-free {1, 2, 3} at 10 *)
  assert (r.Binate.cost = 4);

  (* unate problems embed directly *)
  let unate = Benchsuite.Worked.c5 () in
  let r2 = Binate.solve (Binate.of_unate unate) in
  Format.printf "@.C5 vertex cover through the binate solver: cost %d (expected 3)@."
    r2.Binate.cost;

  (* and infeasibility is detected, which unate covering cannot express *)
  let contradictory = Binate.create ~n_cols:1 [ ([ 0 ], []); ([], [ 0 ]) ] in
  let r3 = Binate.solve contradictory in
  Format.printf "x and not x: %s@."
    (match r3.Binate.assignment with Some _ -> "SAT?!" | None -> "unsatisfiable, as it must be")
