(* Quickstart: pose a covering problem, solve it with ZDD_SCG, inspect
   the result.  Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A covering matrix: 6 requirements (rows) over 5 candidate resources
     (columns).  Each row lists the columns that satisfy it; costs default
     to 1 per column unless given. *)
  let matrix =
    Covering.Matrix.create ~cost:[| 3; 2; 1; 2; 1 |] ~n_cols:5
      [ [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 1; 3 ]; [ 2; 4 ]; [ 3; 4 ] ]
  in
  Format.printf "problem:@.%a@.@." Covering.Matrix.pp matrix;

  (* Solve with the paper's heuristic.  The result carries the chosen
     columns, their total cost, a proven lower bound, and run statistics. *)
  let result = Scg.solve matrix in
  Format.printf "ZDD_SCG found cost %d with columns [%a]@." result.Scg.cost
    Fmt.(list ~sep:sp int)
    result.Scg.solution;
  Format.printf "lower bound %d — %s@." result.Scg.lower_bound
    (if result.Scg.proven_optimal then "proven optimal" else "not proven optimal");
  Format.printf "%a@.@." Scg.Stats.pp result.Scg.stats;

  (* Cross-check with the exact branch-and-bound solver. *)
  let exact = Covering.Exact.solve matrix in
  Format.printf "exact solver agrees: cost %d (%d nodes)@." exact.Covering.Exact.cost
    exact.Covering.Exact.nodes;
  assert (exact.Covering.Exact.cost = result.Scg.cost);

  (* The classical bounds of the paper, for comparison. *)
  let mis = Covering.Mis_bound.compute matrix in
  let da = Lagrangian.Dual_ascent.run matrix in
  Format.printf "bounds: MIS %d <= dual ascent %.2f <= optimum %d@."
    mis.Covering.Mis_bound.bound da.Lagrangian.Dual_ascent.value exact.Covering.Exact.cost
