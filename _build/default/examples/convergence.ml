(* Watching the subgradient method work (paper §3.2): the per-step value
   z_LP(λ_k) oscillates while the best bound LB rises monotonically toward
   the LP optimum, with the step coefficient halving whenever progress
   stalls.  This example prints the trajectory and the final bracket
   against the exact LP bound.

   Run with:  dune exec examples/convergence.exe *)

let () =
  let m =
    Benchsuite.Randucp.cyclic ~name:"convergence-demo" ~n_rows:60 ~n_cols:40 ~k:3 ()
  in
  Format.printf "instance: %dx%d cyclic matrix@.@." (Covering.Matrix.n_rows m)
    (Covering.Matrix.n_cols m);
  let samples = ref [] in
  let out =
    Lagrangian.Subgradient.run
      ~on_step:(fun ~step ~value ~best -> samples := (step, value, best) :: !samples)
      m
  in
  let samples = List.rev !samples in
  Format.printf "%6s %12s %12s@." "step" "z_LP(l_k)" "best LB";
  List.iter
    (fun (step, value, best) ->
      if step <= 10 || step mod 25 = 0 then
        Format.printf "%6d %12.4f %12.4f@." step value best)
    samples;
  let lp = Lagrangian.Lp.solve m in
  Format.printf "@.subgradient bound %.4f vs exact LP %.4f (gap %.4f)@."
    out.Lagrangian.Subgradient.lower_bound lp.Lagrangian.Lp.value
    (lp.Lagrangian.Lp.value -. out.Lagrangian.Subgradient.lower_bound);
  Format.printf "incumbent cover %d; exact optimum %d@."
    out.Lagrangian.Subgradient.best_cost
    (Covering.Exact.solve m).Covering.Exact.cost;
  (* the §3.2 behaviour, stated as checks: oscillation happens, the best
     bound is monotone, and it never exceeds the LP optimum *)
  let monotone =
    List.for_all2
      (fun (_, _, b1) (_, _, b2) -> b2 >= b1 -. 1e-9)
      (List.filteri (fun i _ -> i < List.length samples - 1) samples)
      (List.tl samples)
  in
  assert monotone;
  assert (out.Lagrangian.Subgradient.lower_bound <= lp.Lagrangian.Lp.value +. 1e-6);
  Format.printf "checked: best bound monotone and below the LP optimum@."
