(* Differential tests for the incremental reduction engine: Reduce2 must
   reproduce the legacy Reduce.cyclic_core byte for byte — same core,
   same fixed cost, same trace events (order within a generation may
   differ) — plus invariant and undo-trail checks for the Sparse
   substrate it runs on. *)

open Covering
module TS = Test_support

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let matrices_equal a b =
  Matrix.n_rows a = Matrix.n_rows b
  && Matrix.n_cols a = Matrix.n_cols b
  && (let ok = ref true in
      for i = 0 to Matrix.n_rows a - 1 do
        if
          Matrix.row_id a i <> Matrix.row_id b i
          || Matrix.row a i <> Matrix.row b i
        then ok := false
      done;
      for j = 0 to Matrix.n_cols a - 1 do
        if
          Matrix.col_id a j <> Matrix.col_id b j
          || Matrix.cost a j <> Matrix.cost b j
          || Matrix.col a j <> Matrix.col b j
        then ok := false
      done;
      !ok)

let sorted_trace t = List.sort Stdlib.compare t

let engines_agree ?(gimpel = true) name m =
  let legacy = Reduce.cyclic_core ~gimpel m in
  let incr = Reduce2.cyclic_core ~gimpel m in
  Matrix.transpose_check incr.Reduce.core;
  if legacy.Reduce.fixed_cost <> incr.Reduce.fixed_cost then
    Alcotest.failf "%s: fixed_cost %d vs %d" name legacy.Reduce.fixed_cost
      incr.Reduce.fixed_cost;
  if sorted_trace legacy.Reduce.trace <> sorted_trace incr.Reduce.trace then
    Alcotest.failf "%s: traces differ (%d vs %d events)" name
      (List.length legacy.Reduce.trace)
      (List.length incr.Reduce.trace);
  if not (matrices_equal legacy.Reduce.core incr.Reduce.core) then
    Alcotest.failf "%s: cores differ (%dx%d vs %dx%d)" name
      (Matrix.n_rows legacy.Reduce.core)
      (Matrix.n_cols legacy.Reduce.core)
      (Matrix.n_rows incr.Reduce.core)
      (Matrix.n_cols incr.Reduce.core)

(* ------------------------------------------------------------------ *)
(* Engine equivalence on the benchmark generators                     *)
(* ------------------------------------------------------------------ *)

(* ~200 generator instances spanning both benchmark profiles: the
   reduction-friendly ones exercise long essential/dominance cascades
   and Gimpel folds, the row-regular cyclic ones the nothing-applies
   fixpoint and partial dominance. *)
let test_equiv_randucp () =
  for seed = 0 to 99 do
    let name = Printf.sprintf "red-%d" seed in
    let m =
      Benchsuite.Randucp.reducible ~name
        ~n_rows:(8 + (seed * 7 mod 40))
        ~n_cols:(6 + (seed * 5 mod 25))
        ()
    in
    engines_agree ~gimpel:true (name ^ "/g") m;
    engines_agree ~gimpel:false (name ^ "/ng") m
  done;
  for seed = 0 to 99 do
    let name = Printf.sprintf "cyc-%d" seed in
    let m =
      Benchsuite.Randucp.cyclic ~name
        ~n_rows:(10 + (seed * 11 mod 50))
        ~n_cols:(8 + (seed * 3 mod 30))
        ~k:(2 + (seed mod 3))
        ~cost_spread:(seed mod 4)
        ()
    in
    engines_agree ~gimpel:true (name ^ "/g") m;
    engines_agree ~gimpel:false (name ^ "/ng") m
  done

let prop_equiv_random =
  QCheck.Test.make ~name:"incremental engine = legacy engine" ~count:150
    TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      engines_agree ~gimpel:true (Printf.sprintf "seed-%d" seed) m;
      let m2 = TS.medium_matrix_of_seed seed in
      engines_agree ~gimpel:false (Printf.sprintf "mseed-%d" seed) m2;
      true)

let prop_lift_agrees =
  QCheck.Test.make ~name:"lifting through either trace gives the optimum"
    ~count:80 TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let direct = Matrix.cost_of m (Exact.brute_force m) in
      let r = Reduce2.cyclic_core ~gimpel:true m in
      let core_sol =
        if Matrix.is_empty r.Reduce.core then []
        else Exact.brute_force r.Reduce.core
      in
      let lifted = Reduce.lift r.Reduce.trace core_sol in
      Matrix.covers m lifted && Matrix.cost_of m lifted = direct)

let test_equiv_empty_and_trivial () =
  (* no rows: both engines hand the matrix back untouched *)
  let empty = Matrix.create ~n_cols:3 [] in
  engines_agree "empty" empty;
  (* fully essential chain *)
  let chain = Matrix.create ~n_cols:3 [ [ 2 ]; [ 1; 2 ]; [ 0; 1 ] ] in
  engines_agree "chain" chain;
  (* odd cycle: nothing reduces, the core is the input *)
  engines_agree "c5" (TS.c5_matrix ())

(* ------------------------------------------------------------------ *)
(* Sparse invariants                                                  *)
(* ------------------------------------------------------------------ *)

let sq_matrix () =
  (* rows {0,1,2}, {1,2}, {0,2}; costs 2,3,4 *)
  Matrix.create ~cost:[| 2; 3; 4 |] ~n_cols:3 [ [ 0; 1; 2 ]; [ 1; 2 ]; [ 0; 2 ] ]

let test_sparse_round_trip () =
  let m = TS.medium_matrix_of_seed 42 in
  let s = Sparse.of_matrix m in
  Sparse.check s;
  Alcotest.(check int) "rows" (Matrix.n_rows m) (Sparse.rows_alive s);
  Alcotest.(check int) "cols" (Matrix.n_cols m) (Sparse.cols_alive s);
  check "round trip" true (matrices_equal m (Sparse.to_matrix s))

let test_sparse_deletion () =
  let m = sq_matrix () in
  let s = Sparse.of_matrix m in
  Sparse.delete_row s 0;
  Sparse.check s;
  Alcotest.(check int) "col 1 shrank" 1 (Sparse.col_len s 1);
  Sparse.delete_col s 1;
  Sparse.check s;
  Alcotest.(check int) "row 1 shrank" 1 (Sparse.row_len s 1);
  check "row 1 alive" true (Sparse.row_alive s 1);
  let sub =
    Matrix.submatrix m ~keep_rows:[| false; true; true |]
      ~keep_cols:[| true; false; true |]
  in
  check "matches submatrix" true (matrices_equal sub (Sparse.to_matrix s))

let test_sparse_rollback () =
  let m = sq_matrix () in
  let s = Sparse.of_matrix m in
  Sparse.set_trailing s true;
  let mk = Sparse.mark s in
  Sparse.delete_row s 0;
  Sparse.delete_col s 1;
  let v = Sparse.add_col s ~cost:5 ~id:77 ~rows:[ 1; 2 ] in
  Sparse.check s;
  Alcotest.(check int) "virtual col live" 2 (Sparse.col_len s v);
  Sparse.rollback s mk;
  Sparse.check s;
  check "back to the original" true (matrices_equal m (Sparse.to_matrix s));
  (* a second block of work after a rollback must also unwind cleanly *)
  let mk2 = Sparse.mark s in
  Sparse.delete_row s 2;
  Sparse.delete_row s 1;
  Sparse.check s;
  Alcotest.(check int) "one row left" 1 (Sparse.rows_alive s);
  Sparse.rollback s mk2;
  Sparse.check s;
  check "restored again" true (matrices_equal m (Sparse.to_matrix s))

let prop_sparse_check_random =
  QCheck.Test.make ~name:"invariants hold under random deletions + rollback"
    ~count:120 TS.arb_seed (fun seed ->
      let m = TS.medium_matrix_of_seed seed in
      let s = Sparse.of_matrix m in
      Sparse.check s;
      Sparse.set_trailing s true;
      let mk = Sparse.mark s in
      let rng = Random.State.make [| seed |] in
      (* random row deletions plus column deletions that keep every live
         row non-empty (the Reduce2 contract) *)
      for _ = 1 to 12 do
        if Random.State.bool rng then begin
          let i = Random.State.int rng (Sparse.n_rows s) in
          if Sparse.row_alive s i && Sparse.rows_alive s > 1 then begin
            Sparse.delete_row s i;
            Sparse.check s
          end
        end
        else begin
          let j = Random.State.int rng (Sparse.n_cols s) in
          if Sparse.col_alive s j then begin
            let safe = ref true in
            Sparse.iter_col s j (fun i ->
                if Sparse.row_len s i = 1 then safe := false);
            if !safe then begin
              Sparse.delete_col s j;
              Sparse.check s
            end
          end
        end
      done;
      Sparse.rollback s mk;
      Sparse.check s;
      matrices_equal m (Sparse.to_matrix s))

let () =
  Alcotest.run "reduce2"
    [
      ( "equivalence",
        [
          Alcotest.test_case "randucp suite" `Quick test_equiv_randucp;
          Alcotest.test_case "edge cases" `Quick test_equiv_empty_and_trivial;
          QCheck_alcotest.to_alcotest prop_equiv_random;
          QCheck_alcotest.to_alcotest prop_lift_agrees;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "round trip" `Quick test_sparse_round_trip;
          Alcotest.test_case "deletion" `Quick test_sparse_deletion;
          Alcotest.test_case "rollback" `Quick test_sparse_rollback;
          QCheck_alcotest.to_alcotest prop_sparse_check_random;
        ] );
    ]
