(* The big-instance pipeline: adversarial generators, streaming parser
   round-trips and the O(1)-memory property of the counting fold.

   The planted generator is the one family with an exact cost oracle
   (optimum = 2·blocks by construction, see Randucp.planted), so it
   doubles as an end-to-end solver correctness test at sizes where the
   exact solver cannot confirm anything.

   Everything here is CI-sized.  Set UCP_SCALE_BIG=1 to add the two
   expensive checks behind the scale acceptance bar: a >= 100 MB
   synthetic OR-Library file streamed in bounded memory, and the
   10^5-column planted instance solved to its certificate through the
   raised MaxR/MaxC guards (the implicit-phase skip). *)

module Matrix = Covering.Matrix
module Instance = Covering.Instance
module Randucp = Benchsuite.Randucp
module Registry = Benchsuite.Registry

let big_enabled = Sys.getenv_opt "UCP_SCALE_BIG" = Some "1"

let matrix_equal a b =
  Matrix.n_rows a = Matrix.n_rows b
  && Matrix.n_cols a = Matrix.n_cols b
  && (let eq = ref true in
      for j = 0 to Matrix.n_cols a - 1 do
        if Matrix.cost a j <> Matrix.cost b j then eq := false
      done;
      for i = 0 to Matrix.n_rows a - 1 do
        if Matrix.row a i <> Matrix.row b i then eq := false
      done;
      !eq)

let with_temp_file suffix f =
  let path = Filename.temp_file "ucp_scale" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* planted-optimum certificates                                       *)
(* ------------------------------------------------------------------ *)

(* one parameter set per regime: plain blocks, cross columns, big
   blocks with many decoys *)
let planted_cases =
  [
    ("plain", 5, 6, 3, 0);
    ("cross", 8, 8, 4, 6);
    ("deep", 3, 12, 5, 2);
    ("wide", 40, 6, 3, 0);
  ]

let test_planted_certificates () =
  List.iter
    (fun (tag, blocks, r, g, cross) ->
      let m, opt =
        Randucp.planted ~name:("cert-" ^ tag) ~blocks ~rows_per_block:r
          ~decoys_per_block:g ~cross ()
      in
      Alcotest.(check int) (tag ^ ": certificate") (2 * blocks) opt;
      let res = Scg.solve m in
      Alcotest.(check int) (tag ^ ": solved cost") opt res.Scg.cost;
      Alcotest.(check bool) (tag ^ ": proven") true res.Scg.proven_optimal)
    planted_cases

let test_planted_validation () =
  let expect_invalid tag f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" tag
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "blocks<1" (fun () ->
      Randucp.planted ~name:"x" ~blocks:0 ~rows_per_block:6 ~decoys_per_block:3 ());
  expect_invalid "decoys<3" (fun () ->
      Randucp.planted ~name:"x" ~blocks:2 ~rows_per_block:6 ~decoys_per_block:2 ());
  expect_invalid "rows<decoys" (fun () ->
      Randucp.planted ~name:"x" ~blocks:2 ~rows_per_block:2 ~decoys_per_block:3 ());
  expect_invalid "cross needs 2 blocks" (fun () ->
      Randucp.planted ~name:"x" ~blocks:1 ~rows_per_block:6 ~decoys_per_block:3
        ~cross:1 ());
  expect_invalid "powerlaw alpha<=1" (fun () ->
      Randucp.powerlaw ~name:"x" ~n_rows:10 ~n_cols:10 ~alpha:1.0 ());
  expect_invalid "multi parts<1" (fun () ->
      Randucp.multi_component ~name:"x" ~parts:0 ~rows_per_part:4 ~cols_per_part:4 ())

(* the planted optimum survives the full scale pipeline: emit to both
   text formats, re-parse through the streaming parsers, solve *)
let test_planted_through_formats () =
  let m, opt =
    Randucp.planted ~name:"pipe" ~blocks:10 ~rows_per_block:8 ~decoys_per_block:4
      ~cross:5 ()
  in
  let via_ucp =
    with_temp_file ".ucp" (fun path ->
        Instance.write_file path m;
        Instance.parse_file path)
  in
  let via_orlib = Instance.parse_orlib (Instance.to_orlib m) in
  Alcotest.(check bool) "ucp identical" true (matrix_equal m via_ucp);
  Alcotest.(check bool) "orlib identical" true (matrix_equal m via_orlib);
  let res = Scg.solve via_orlib in
  Alcotest.(check int) "cost after round-trip" opt res.Scg.cost

(* ------------------------------------------------------------------ *)
(* generator family round-trips                                       *)
(* ------------------------------------------------------------------ *)

let family_samples () =
  [
    ("cyclic", Randucp.cyclic ~name:"rt-cyc" ~n_rows:40 ~n_cols:30 ~k:3 ());
    ( "beasley",
      Randucp.beasley ~name:"rt-bea" ~n_rows:30 ~n_cols:120 ~rows_per_col:4 () );
    ( "powerlaw",
      Randucp.powerlaw ~name:"rt-pow" ~n_rows:80 ~n_cols:200 ~alpha:2.1 () );
    ("planted", fst (Randucp.planted ~name:"rt-pla" ~blocks:6 ~rows_per_block:7
                       ~decoys_per_block:3 ~cross:3 ()));
    ( "multi",
      Randucp.multi_component ~name:"rt-mul" ~parts:4 ~rows_per_part:12
        ~cols_per_part:9 () );
  ]

let test_family_roundtrips () =
  List.iter
    (fun (tag, m) ->
      (* .ucp through the file writer and the streaming file parser *)
      let m_ucp =
        with_temp_file ".ucp" (fun path ->
            Instance.write_file path m;
            Instance.parse_file path)
      in
      Alcotest.(check bool) (tag ^ ": ucp file round-trip") true
        (matrix_equal m m_ucp);
      (* OR-Library through the channel writer and the streaming parser *)
      let m_orlib =
        with_temp_file ".scp" (fun path ->
            Out_channel.with_open_text path (fun oc -> Instance.output_orlib oc m);
            Instance.parse_orlib_file path)
      in
      Alcotest.(check bool) (tag ^ ": orlib file round-trip") true
        (matrix_equal m m_orlib))
    (family_samples ())

(* generators are deterministic functions of their name *)
let test_determinism () =
  let a, oa =
    Randucp.planted ~name:"det" ~blocks:7 ~rows_per_block:6 ~decoys_per_block:3 ()
  in
  let b, ob =
    Randucp.planted ~name:"det" ~blocks:7 ~rows_per_block:6 ~decoys_per_block:3 ()
  in
  Alcotest.(check int) "same certificate" oa ob;
  Alcotest.(check bool) "same matrix" true (matrix_equal a b);
  let p = Randucp.powerlaw ~name:"det" ~n_rows:50 ~n_cols:80 () in
  let q = Randucp.powerlaw ~name:"det" ~n_rows:50 ~n_cols:80 () in
  Alcotest.(check bool) "powerlaw deterministic" true (matrix_equal p q)

(* ------------------------------------------------------------------ *)
(* registry-wide streaming/legacy equivalence                         *)
(* ------------------------------------------------------------------ *)

(* every registry matrix survives both text formats bit-for-bit, with
   the in-memory string parsers and the streaming file parsers
   agreeing.  This is the "no instance in the suite distinguishes the
   parsers" property the scale tier relies on. *)
let test_registry_equivalence () =
  List.iter
    (fun inst ->
      let name = inst.Registry.name in
      let m = Registry.matrix inst in
      let via_string = Instance.parse (Instance.to_string m) in
      Alcotest.(check bool) (name ^ ": ucp string") true
        (matrix_equal m via_string);
      let via_file =
        with_temp_file ".ucp" (fun path ->
            Instance.write_file path m;
            Instance.parse_file path)
      in
      Alcotest.(check bool) (name ^ ": ucp stream") true (matrix_equal m via_file);
      let via_orlib = Instance.parse_orlib (Instance.to_orlib m) in
      Alcotest.(check bool) (name ^ ": orlib string") true
        (matrix_equal m via_orlib))
    (Registry.all ())

(* ------------------------------------------------------------------ *)
(* O(1)-memory counting fold                                          *)
(* ------------------------------------------------------------------ *)

(* heap growth while stream-counting a file, in bytes.  The fold keeps
   no per-row state, so the major heap must not grow with the file:
   the same gauge the scale benchmark gates as fold_mem_ratio. *)
let fold_growth_bytes path =
  let rows = ref 0 and nnz = ref 0 in
  In_channel.with_open_text path (fun ic ->
      Gc.full_major ();
      let before = (Gc.quick_stat ()).Gc.heap_words in
      Logic.Reader.reset_heap_peak ();
      Instance.stream_orlib
        (Logic.Reader.of_channel ic)
        ~dims:(fun ~n_rows:_ ~n_cols:_ -> ())
        ~cost:(fun _ _ -> ())
        ~row:(fun _ cols ->
          incr rows;
          nnz := !nnz + List.length cols);
      let peak = max (Logic.Reader.peak_heap_words ()) before in
      ((peak - before) * (Sys.word_size / 8), !rows, !nnz))

let write_orlib_matrix path m =
  Out_channel.with_open_text path (fun oc -> Instance.output_orlib oc m)

let test_fold_memory () =
  (* a ~1.6 MB planted file: materialising it costs several MB of int
     lists, so a bounded-growth fold is real evidence of streaming *)
  let m, _ =
    Randucp.planted ~name:"mem" ~blocks:12_500 ~rows_per_block:8
      ~decoys_per_block:7 ()
  in
  with_temp_file ".scp" (fun path ->
      write_orlib_matrix path m;
      let file_bytes = (Unix.stat path).Unix.st_size in
      Alcotest.(check bool) "file is > 1 MB" true (file_bytes > 1_000_000);
      let growth, rows, nnz = fold_growth_bytes path in
      Alcotest.(check int) "fold saw every row" (Matrix.n_rows m) rows;
      Alcotest.(check int) "fold saw every nonzero" (Matrix.nnz m) nnz;
      (* generous: half the file size still rules out any whole-file or
         whole-matrix materialisation (the matrix alone is ~5x bigger) *)
      if growth > file_bytes / 2 then
        Alcotest.failf "counting fold grew the heap by %d bytes on a %d-byte file"
          growth file_bytes)

(* ------------------------------------------------------------------ *)
(* UCP_SCALE_BIG=1: the acceptance-bar checks                         *)
(* ------------------------------------------------------------------ *)

(* stream-write a >= 100 MB OR-Library file without ever holding it:
   [rows] rows of [cols_per_row] columns each, cycling over n_cols *)
let write_big_orlib path ~n_rows ~n_cols ~cols_per_row =
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "%d %d\n" n_rows n_cols;
      for j = 0 to n_cols - 1 do
        Printf.fprintf oc "%d%c" (1 + (j mod 7)) (if (j + 1) mod 20 = 0 then '\n' else ' ')
      done;
      output_char oc '\n';
      for i = 0 to n_rows - 1 do
        Printf.fprintf oc "%d\n" cols_per_row;
        for c = 0 to cols_per_row - 1 do
          let col = 1 + ((i * 13 + c * 71) mod n_cols) in
          Printf.fprintf oc "%d%c" col (if (c + 1) mod 20 = 0 then '\n' else ' ')
        done;
        if cols_per_row mod 20 <> 0 then output_char oc '\n'
      done)

let test_big_fold_memory () =
  if not big_enabled then () else
    with_temp_file ".scp" (fun path ->
        (* ~85k rows x 200 cols/row of up-to-6-digit indices: > 100 MB *)
        write_big_orlib path ~n_rows:85_000 ~n_cols:100_000 ~cols_per_row:200;
        let file_bytes = (Unix.stat path).Unix.st_size in
        Alcotest.(check bool) "file is >= 100 MB" true
          (file_bytes >= 100_000_000);
        let growth, rows, nnz = fold_growth_bytes path in
        Alcotest.(check int) "rows" 85_000 rows;
        Alcotest.(check int) "nnz" 17_000_000 nnz;
        (* independence of file size: a fixed 16 MB cap, 0.02% of what
           materialisation would need *)
        if growth > 16_000_000 then
          Alcotest.failf "fold grew the heap by %d bytes on a %d-byte file"
            growth file_bytes)

let test_big_planted_solve () =
  if not big_enabled then () else begin
    let m, opt =
      Randucp.planted ~name:"big" ~blocks:12_500 ~rows_per_block:8
        ~decoys_per_block:7 ()
    in
    Alcotest.(check int) "10^5 columns" 100_000 (Matrix.n_cols m);
    Alcotest.(check int) "certificate" 25_000 opt;
    (* stream-parse from disk first: the instance enters exactly as a
       user's file would *)
    let m =
      with_temp_file ".ucp" (fun path ->
          Instance.write_file path m;
          Instance.parse_file path)
    in
    (* raised guards admit the whole input, so the implicit ZDD phase
       is skipped and the explicit worklist engine takes it directly *)
    let config =
      {
        Scg.Config.default with
        Scg.Config.max_rows_implicit = 200_000;
        max_cols_implicit = 200_000;
      }
    in
    let res = Scg.solve ~config m in
    Alcotest.(check int) "solved to certificate" opt res.Scg.cost;
    Alcotest.(check bool) "proven optimal" true res.Scg.proven_optimal
  end

let () =
  Alcotest.run "scale"
    [
      ( "planted",
        [
          Alcotest.test_case "certificates hold" `Quick test_planted_certificates;
          Alcotest.test_case "parameter validation" `Quick test_planted_validation;
          Alcotest.test_case "through both formats" `Quick
            test_planted_through_formats;
        ] );
      ( "generators",
        [
          Alcotest.test_case "family round-trips" `Quick test_family_roundtrips;
          Alcotest.test_case "deterministic by name" `Quick test_determinism;
        ] );
      ( "registry",
        [
          Alcotest.test_case "streaming/legacy equivalence" `Slow
            test_registry_equivalence;
        ] );
      ( "memory",
        [
          Alcotest.test_case "counting fold is bounded" `Quick test_fold_memory;
          Alcotest.test_case "100 MB file (UCP_SCALE_BIG)" `Slow
            test_big_fold_memory;
          Alcotest.test_case "10^5-column solve (UCP_SCALE_BIG)" `Slow
            test_big_planted_solve;
        ] );
    ]
