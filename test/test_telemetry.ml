(* The telemetry subsystem: span nesting and monotonicity invariants
   (driven by a fake clock), JSON round-tripping of the trace stream,
   the null-sink differential guarantee (tracing must not change solver
   results), and the timing-consistency regression — reported times are
   wall-clock and therefore comparable with a tripped --timeout. *)

module Telemetry = Scg.Telemetry
module Json = Telemetry.Json
module Matrix = Covering.Matrix

let check = Alcotest.(check bool)

(* a deterministic clock: every read advances time by 1.0 *)
let fake_clock () =
  let t = ref 0. in
  fun () ->
    let v = !t in
    t := v +. 1.;
    v

(* ------------------------------------------------------------------ *)
(* Null collector                                                     *)
(* ------------------------------------------------------------------ *)

let test_null_inert () =
  let t = Telemetry.null in
  check "disabled" true (not (Telemetry.enabled t));
  Alcotest.(check int) "span runs thunk" 41 (Telemetry.span t "x" (fun () -> 41));
  Telemetry.add t "c" 5;
  Telemetry.incr t "c";
  Telemetry.event t "e" [ ("k", Json.Int 1) ];
  Telemetry.step t ~phase:"p" ~component:0 ~step:1 ~value:1. ~best:1.;
  Alcotest.(check int) "counter 0" 0 (Telemetry.counter t "c");
  check "no counters" true (Telemetry.counters t = []);
  check "no spans" true (Telemetry.spans t = []);
  check "no last_best" true (Telemetry.last_best t ~phase:"p" = None);
  check "elapsed 0" true (Telemetry.elapsed t = 0.);
  check "empty summary" true (Json.equal (Telemetry.summary t) (Json.Obj []));
  Telemetry.close t

(* ------------------------------------------------------------------ *)
(* Spans: nesting, monotonicity, exception safety                     *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  Telemetry.span t "outer" (fun () ->
      Telemetry.span t ~index:0 "inner" (fun () -> ());
      Telemetry.span t ~index:1 "inner" (fun () -> ()));
  Telemetry.span t "flat" (fun () -> ());
  let spans = Telemetry.spans t in
  Alcotest.(check int) "four spans" 4 (List.length spans);
  (* completion order: inner spans close before their enclosing one *)
  let names = List.map (fun s -> s.Telemetry.name) spans in
  check "order" true (names = [ "inner-0"; "inner-1"; "outer"; "flat" ]);
  List.iter
    (fun s -> check "start <= stop" true (s.Telemetry.start <= s.Telemetry.stop))
    spans;
  let by_name n = List.find (fun s -> s.Telemetry.name = n) spans in
  let outer = by_name "outer" and i0 = by_name "inner-0" and i1 = by_name "inner-1" in
  Alcotest.(check int) "outer depth" 0 outer.Telemetry.depth;
  Alcotest.(check int) "inner depth" 1 i0.Telemetry.depth;
  check "inner inside outer" true
    (outer.Telemetry.start <= i0.Telemetry.start
    && i1.Telemetry.stop <= outer.Telemetry.stop);
  check "siblings ordered" true (i0.Telemetry.stop <= i1.Telemetry.start);
  Alcotest.(check int) "flat back at depth 0" 0 (by_name "flat").Telemetry.depth

let test_span_exception_safe () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  (try Telemetry.span t "outer" (fun () -> failwith "boom") with Failure _ -> ());
  (* the span is still recorded, and the depth counter is restored *)
  Alcotest.(check int) "span recorded" 1 (List.length (Telemetry.spans t));
  Telemetry.span t "next" (fun () -> ());
  let next = List.nth (Telemetry.spans t) 1 in
  Alcotest.(check int) "depth restored" 0 next.Telemetry.depth

let test_counters_and_steps () =
  let t = Telemetry.create ~clock:(fake_clock ()) () in
  Telemetry.add t "a" 3;
  Telemetry.incr t "a";
  Telemetry.incr t "b";
  Alcotest.(check int) "a" 4 (Telemetry.counter t "a");
  Alcotest.(check int) "b" 1 (Telemetry.counter t "b");
  check "sorted" true (Telemetry.counters t = [ ("a", 4); ("b", 1) ]);
  Telemetry.step t ~phase:"subgradient" ~component:0 ~step:0 ~value:1.5 ~best:1.5;
  Telemetry.step t ~phase:"subgradient" ~component:0 ~step:1 ~value:1.2 ~best:1.7;
  check "last best" true (Telemetry.last_best t ~phase:"subgradient" = Some 1.7);
  match Json.member "steps" (Telemetry.summary t) with
  | Some (Json.Obj [ ("subgradient", sub) ]) ->
    check "step count" true (Json.member "count" sub = Some (Json.Int 2))
  | _ -> Alcotest.fail "summary.steps shape"

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let test_json_round_trip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 0.1;
      Json.Float 1e-9;
      Json.Float 12345.6789;
      Json.String "plain";
      Json.String "esc \" \\ \n \t \x07 unicode \xc3\xa9";
      Json.List [ Json.Int 1; Json.Obj [ ("k", Json.Null) ]; Json.List [] ];
      Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool false ]) ];
    ]
  in
  List.iter
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> check (Json.to_string v) true (Json.equal v v')
      | Error e -> Alcotest.failf "parse failed on %s: %s" (Json.to_string v) e)
    samples;
  (* non-finite floats canonicalise to null *)
  check "nan" true (Json.to_string (Json.Float Float.nan) = "null");
  check "inf" true (Json.to_string (Json.Float Float.infinity) = "null");
  check "reject garbage" true
    (match Json.of_string "{\"a\": }" with Error _ -> true | Ok _ -> false);
  check "reject trailing" true
    (match Json.of_string "1 2" with Error _ -> true | Ok _ -> false)

(* every record streamed to the sink parses back, timestamps are
   monotone, span begin/end are balanced and the summary comes last *)
let test_trace_stream () =
  let lines = ref [] in
  let t = Telemetry.create ~clock:(fake_clock ()) ~trace:(fun l -> lines := l :: !lines) () in
  Telemetry.span t "outer" (fun () ->
      Telemetry.step t ~phase:"subgradient" ~component:0 ~step:0 ~value:2. ~best:2.;
      Telemetry.event t "incumbent" [ ("cost", Json.Int 7) ];
      Telemetry.span t "inner" (fun () -> ()));
  Telemetry.close t;
  Telemetry.close t (* idempotent: must not add a second summary *)
  ;
  let records =
    List.rev_map
      (fun l ->
        match Json.of_string l with
        | Ok v -> v
        | Error e -> Alcotest.failf "unparseable trace line %S: %s" l e)
      !lines
  in
  check "has records" true (List.length records = 7);
  let t_of r = Option.get (Json.to_float (Option.get (Json.member "t" r))) in
  let ev_of r = Option.get (Json.to_str (Option.get (Json.member "ev" r))) in
  let rec monotone = function
    | a :: (b :: _ as rest) -> t_of a <= t_of b && monotone rest
    | _ -> true
  in
  check "t monotone" true (monotone records);
  let depth = ref 0 in
  List.iter
    (fun r ->
      match ev_of r with
      | "span_begin" -> incr depth
      | "span_end" ->
        decr depth;
        check "balanced" true (!depth >= 0)
      | _ -> ())
    records;
  Alcotest.(check int) "spans balanced" 0 !depth;
  let last = List.nth records (List.length records - 1) in
  check "summary last" true (ev_of last = "summary");
  check "exactly one summary" true
    (List.length (List.filter (fun r -> ev_of r = "summary") records) = 1);
  check "incumbent event seen" true
    (List.exists (fun r -> ev_of r = "incumbent") records)

(* ------------------------------------------------------------------ *)
(* Solver integration                                                 *)
(* ------------------------------------------------------------------ *)

let bench1 () = Benchsuite.Registry.matrix (Benchsuite.Registry.find "bench1")

(* an active collector must not perturb the solve: same cost, same
   solution, same stats as the untraced run *)
let test_null_vs_active_differential () =
  let m = bench1 () in
  let plain = Scg.solve m in
  let buf = Buffer.create 4096 in
  let t = Telemetry.create ~trace:(fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') () in
  let traced = Scg.solve ~telemetry:t m in
  Telemetry.close t;
  check "same cost" true (plain.Scg.cost = traced.Scg.cost);
  check "same solution" true (plain.Scg.solution = traced.Scg.solution);
  check "same lower bound" true (plain.Scg.lower_bound = traced.Scg.lower_bound);
  check "same iterations" true
    (plain.Scg.stats.Scg.Stats.iterations = traced.Scg.stats.Scg.Stats.iterations);
  (* and the traced run actually recorded the solve's phases *)
  let names = List.map (fun s -> s.Telemetry.name) (Telemetry.spans t) in
  check "implicit span" true (List.mem "implicit-reduce" names);
  check "explicit span" true (List.mem "explicit-reduce" names);
  check "component span" true (List.mem "component-0" names);
  check "subgradient steps counted" true
    (Telemetry.counter t "subgradient.steps"
    = traced.Scg.stats.Scg.Stats.subgradient_steps);
  check "trace nonempty" true (Buffer.length buf > 0)

(* solver spans cover the run: the per-phase seconds in the summary sum
   to no more than the total elapsed time, and the top-level phases are
   each accounted once per solve *)
let test_span_accounting () =
  let m = bench1 () in
  let t = Telemetry.create () in
  ignore (Scg.solve ~telemetry:t m);
  let elapsed = Telemetry.elapsed t in
  let top =
    List.filter (fun s -> s.Telemetry.depth = 0) (Telemetry.spans t)
  in
  let top_seconds =
    List.fold_left (fun a s -> a +. (s.Telemetry.stop -. s.Telemetry.start)) 0. top
  in
  check "top-level spans fit in elapsed" true (top_seconds <= elapsed +. 1e-6);
  List.iter
    (fun s -> check "span within run" true (s.Telemetry.start >= 0. && s.Telemetry.stop <= elapsed +. 1e-6))
    (Telemetry.spans t)

(* the timing-consistency regression for the Sys.time bug: under a
   wall-clock --timeout the reported total_seconds must be on the same
   clock as the deadline, i.e. at least (roughly) the timeout whenever
   the deadline tripped *)
let test_wall_clock_consistency () =
  let m = Benchsuite.Registry.matrix (Benchsuite.Registry.find "test2") in
  let timeout = 0.15 in
  let budget = Scg.Budget.create ~timeout () in
  let t0 = Scg.Budget.Clock.now () in
  let r = Scg.solve ~budget m in
  let wall = Scg.Budget.Clock.now () -. t0 in
  match r.Scg.status with
  | Scg.Feasible_budget_exhausted _ ->
    let total = r.Scg.stats.Scg.Stats.total_seconds in
    check "total >= 90% of tripped deadline" true (total >= 0.9 *. timeout);
    check "total <= wall" true (total <= wall +. 0.01)
  | Scg.Optimal | Scg.Feasible ->
    (* machine fast enough to finish inside the deadline: the only claim
       left is stats-vs-wall consistency *)
    check "total <= wall" true (r.Scg.stats.Scg.Stats.total_seconds <= wall +. 0.01)

let () =
  Alcotest.run "telemetry"
    [
      ( "collector",
        [
          Alcotest.test_case "null inert" `Quick test_null_inert;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "counters and steps" `Quick test_counters_and_steps;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "trace stream" `Quick test_trace_stream;
        ] );
      ( "solver",
        [
          Alcotest.test_case "null vs active differential" `Quick
            test_null_vs_active_differential;
          Alcotest.test_case "span accounting" `Quick test_span_accounting;
          Alcotest.test_case "wall-clock consistency" `Slow
            test_wall_clock_consistency;
        ] );
    ]
