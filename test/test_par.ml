(* The parallel solve engine.

   Three layers of checks:
   - pool unit tests: Par.map is observationally Array.map under every
     pool size, including exceptions, nesting and reuse;
   - differential solver runs: jobs ∈ {1, 2, 8} produce bit-identical
     covers, costs, bounds and status over the registry suite, and the
     batch driver preserves per-instance results;
   - merged-telemetry conservation and budget trips under parallelism. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_identity () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let input = Array.init 100 Fun.id in
      let out = Par.map ~pool (fun x -> (x * x) + 1) input in
      check (Alcotest.array int) "map = Array.map"
        (Array.map (fun x -> (x * x) + 1) input)
        out)

let test_map_empty_and_small () =
  Par.Pool.with_pool ~jobs:3 (fun pool ->
      check (Alcotest.array int) "empty" [||] (Par.map ~pool succ [||]);
      check (Alcotest.array int) "singleton" [| 8 |] (Par.map ~pool succ [| 7 |]);
      check
        (Alcotest.list int)
        "map_list" [ 2; 3; 4 ]
        (Par.map_list ~pool succ [ 1; 2; 3 ]))

let test_map_no_pool () =
  check (Alcotest.array int) "no pool" [| 2; 4; 6 |]
    (Par.map (fun x -> 2 * x) [| 1; 2; 3 |])

let test_jobs_one_spawns_nothing () =
  Par.Pool.with_pool ~jobs:1 (fun pool ->
      check int "jobs" 1 (Par.Pool.jobs pool);
      check (Alcotest.array int) "sequential degenerate" [| 1; 2; 3 |]
        (Par.map ~pool succ [| 0; 1; 2 |]))

exception Boom of int

let test_exception_lowest_index () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let raised =
        try
          ignore
            (Par.map ~pool
               (fun x -> if x mod 3 = 1 then raise (Boom x) else x)
               (Array.init 32 Fun.id));
          None
        with Boom k -> Some k
      in
      (* all tasks still ran; the lowest failing index is re-raised *)
      check (Alcotest.option int) "first failure wins" (Some 1) raised)

let test_nested_map () =
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let out =
        Par.map ~pool
          (fun i ->
            (* nested map on the same pool must not deadlock *)
            Array.fold_left ( + ) 0
              (Par.map ~pool (fun j -> (i * 10) + j) (Array.init 5 Fun.id)))
          (Array.init 8 Fun.id)
      in
      let expect =
        Array.init 8 (fun i ->
            Array.fold_left ( + ) 0 (Array.init 5 (fun j -> (i * 10) + j)))
      in
      check (Alcotest.array int) "nested" expect out)

let test_pool_reuse () =
  Par.Pool.with_pool ~jobs:2 (fun pool ->
      for round = 1 to 20 do
        let out = Par.map ~pool (fun x -> x + round) (Array.init 17 Fun.id) in
        check (Alcotest.array int)
          (Printf.sprintf "round %d" round)
          (Array.init 17 (fun x -> x + round))
          out
      done)

let test_map_parallel_effects () =
  (* effects land exactly once per task even under real concurrency *)
  Par.Pool.with_pool ~jobs:8 (fun pool ->
      let hits = Atomic.make 0 in
      let _ = Par.map ~pool (fun () -> Atomic.incr hits) (Array.make 200 ()) in
      check int "each task ran once" 200 (Atomic.get hits))

(* ------------------------------------------------------------------ *)
(* Differential: sequential vs parallel solves                         *)
(* ------------------------------------------------------------------ *)

let solve_with_jobs ?pool ~jobs problem =
  let config = { Scg.Config.default with jobs } in
  Scg.solve ?pool ~config problem

let same_result name (a : Scg.result) (b : Scg.result) =
  check (Alcotest.list int) (name ^ ": solution") a.solution b.solution;
  check int (name ^ ": cost") a.cost b.cost;
  check int (name ^ ": lower bound") a.lower_bound b.lower_bound;
  check bool (name ^ ": proven_optimal") a.proven_optimal b.proven_optimal;
  check bool (name ^ ": status") true (a.status = b.status)

let differential_suite instances jobs_list () =
  List.iter
    (fun (inst : Benchsuite.Registry.instance) ->
      let problem = Benchsuite.Registry.matrix inst in
      let reference = solve_with_jobs ~jobs:1 problem in
      List.iter
        (fun jobs ->
          let r = solve_with_jobs ~jobs problem in
          same_result (Printf.sprintf "%s (jobs=%d)" inst.name jobs) reference r)
        jobs_list)
    instances

let test_differential_easy () =
  differential_suite (Benchsuite.Registry.easy ()) [ 2; 8 ] ()

let test_differential_difficult () =
  differential_suite (Benchsuite.Registry.difficult ()) [ 2; 8 ] ()

let test_differential_shared_pool () =
  (* an explicit long-lived pool gives the same answers as transient ones *)
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun (inst : Benchsuite.Registry.instance) ->
          let problem = Benchsuite.Registry.matrix inst in
          let reference = solve_with_jobs ~jobs:1 problem in
          let r = solve_with_jobs ~pool ~jobs:4 problem in
          same_result inst.name reference r)
        (Benchsuite.Registry.difficult ()))

let test_batch_matches_sequential () =
  (* batch parallelism: solving many instances concurrently, each on its
     own domain with its own collector, changes nothing per instance *)
  let problems =
    Array.of_list
      (List.map Benchsuite.Registry.matrix (Benchsuite.Registry.difficult ()))
  in
  let sequential = Array.map (solve_with_jobs ~jobs:1) problems in
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let parallel = Par.map ~pool (solve_with_jobs ~jobs:1) problems in
      Array.iteri
        (fun i r -> same_result (Printf.sprintf "batch[%d]" i) sequential.(i) r)
        parallel)

(* ------------------------------------------------------------------ *)
(* Budget under parallelism                                            *)
(* ------------------------------------------------------------------ *)

let test_budget_trip_parallel () =
  (* an already-expired deadline trips in every component worker; the
     merged result reports the trip and still honours the anytime
     contract (feasible cover, valid lower bound).  Note bit-identity is
     NOT promised under a tripped budget: tick counters are per-domain,
     so where the axe falls differs between jobs counts (DESIGN.md §10). *)
  let problem = Benchsuite.Registry.matrix (Benchsuite.Registry.find "test4") in
  let run jobs =
    let budget = Scg.Budget.create ~timeout:0.0 () in
    let r = Scg.solve ~budget ~config:{ Scg.Config.default with jobs } problem in
    (r, Scg.Budget.tripped budget)
  in
  let r1, trip1 = run 1 in
  let r4, trip4 = run 4 in
  check bool "sequential tripped" true (trip1 <> None);
  check bool "parallel tripped" true (trip4 <> None);
  check bool "sequential cover feasible" true
    (Covering.Matrix.covers problem r1.solution);
  check bool "parallel cover feasible" true
    (Covering.Matrix.covers problem r4.solution);
  check bool "parallel bound valid" true (r4.lower_bound <= r4.cost);
  (match r1.status with
  | Scg.Feasible_budget_exhausted _ -> ()
  | _ -> Alcotest.fail "sequential status must report the trip");
  match r4.status with
  | Scg.Feasible_budget_exhausted _ -> ()
  | _ -> Alcotest.fail "parallel status must report the trip"

let test_budget_fork_absorb () =
  let parent = Budget.create ~steps:10 () in
  let child = Budget.fork parent in
  check bool "child active" true (Budget.is_active child);
  (* trip the child only *)
  let tripped = ref false in
  for _ = 1 to 20 do
    if Budget.tick child Budget.Subgradient then tripped := true
  done;
  check bool "child tripped" true !tripped;
  check bool "parent untouched" true (Budget.tripped parent = None);
  Budget.absorb parent child;
  check bool "parent absorbed trip" true (Budget.tripped parent <> None)

let test_budget_fork_of_none () =
  let child = Budget.fork Budget.none in
  check bool "fork of none is inactive" false (Budget.is_active child);
  Budget.absorb Budget.none child;
  check bool "none never trips" true (Budget.tripped Budget.none = None)

(* ------------------------------------------------------------------ *)
(* Telemetry merge                                                     *)
(* ------------------------------------------------------------------ *)

let test_telemetry_counter_conservation () =
  (* counters incremented across forked collectors sum exactly into the
     parent after merging — nothing lost, nothing double-counted *)
  let parent = Telemetry.create () in
  Telemetry.add parent "work" 5;
  let children = Array.init 4 (fun _ -> Telemetry.fork parent) in
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Par.map ~pool
           (fun t ->
             for _ = 1 to 100 do
               Telemetry.incr t "work"
             done;
             Telemetry.event t "probe" [])
           children));
  Array.iter (fun c -> Telemetry.merge parent c) children;
  check int "counter conserved" 405 (Telemetry.counter parent "work");
  let events =
    match Telemetry.summary parent with
    | Telemetry.Json.Obj fields -> (
      match List.assoc_opt "events" fields with
      | Some (Telemetry.Json.Obj evs) -> (
        match List.assoc_opt "probe" evs with
        | Some (Telemetry.Json.Int n) -> n
        | _ -> -1)
      | _ -> -1)
    | _ -> -1
  in
  check int "events conserved" 4 events

let test_telemetry_span_merge () =
  let parent = Telemetry.create () in
  let child = Telemetry.fork parent in
  Telemetry.span child ~index:3 "component" (fun () -> ());
  Telemetry.merge parent child;
  let names = List.map (fun s -> s.Telemetry.name) (Telemetry.spans parent) in
  check bool "merged span visible" true (List.mem "component-3" names)

let test_telemetry_merged_solve_counters () =
  (* end to end: a parallel solve's merged collector reports the same
     counter totals as the sequential solve's collector *)
  let problem = Benchsuite.Registry.matrix (Benchsuite.Registry.find "exam") in
  let counters_with jobs =
    let telemetry = Telemetry.create () in
    let (_ : Scg.result) =
      Scg.solve ~telemetry ~config:{ Scg.Config.default with jobs } problem
    in
    Telemetry.counters telemetry
  in
  let seq = counters_with 1 in
  let par = counters_with 4 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string int))
    "merged counters = sequential counters" seq par

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map identity" `Quick test_map_identity;
          Alcotest.test_case "empty/small" `Quick test_map_empty_and_small;
          Alcotest.test_case "no pool" `Quick test_map_no_pool;
          Alcotest.test_case "jobs=1" `Quick test_jobs_one_spawns_nothing;
          Alcotest.test_case "exception order" `Quick test_exception_lowest_index;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "parallel effects" `Quick test_map_parallel_effects;
        ] );
      ( "differential",
        [
          Alcotest.test_case "easy suite jobs={1,2,8}" `Slow test_differential_easy;
          Alcotest.test_case "difficult suite jobs={1,2,8}" `Slow
            test_differential_difficult;
          Alcotest.test_case "shared pool" `Slow test_differential_shared_pool;
          Alcotest.test_case "batch = sequential" `Slow test_batch_matches_sequential;
        ] );
      ( "budget",
        [
          Alcotest.test_case "trip under parallelism" `Quick test_budget_trip_parallel;
          Alcotest.test_case "fork/absorb" `Quick test_budget_fork_absorb;
          Alcotest.test_case "fork of none" `Quick test_budget_fork_of_none;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "counter conservation" `Quick
            test_telemetry_counter_conservation;
          Alcotest.test_case "span merge" `Quick test_telemetry_span_merge;
          Alcotest.test_case "solve counters merge" `Slow
            test_telemetry_merged_solve_counters;
        ] );
    ]
