(* Trace smoke test: run traced solves over the difficult suite and
   validate the emitted JSON-lines stream against the documented schema —
   every line parses, record types are known, timestamps are monotone,
   span begin/end records balance, and the summary record comes last.

   With `--validate FILE` it instead checks an existing trace file (the
   runtest rule uses this on a trace produced by the ucp_solve CLI), so
   the schema checked here is the schema the shipped binary emits. *)

module Telemetry = Scg.Telemetry
module Json = Telemetry.Json

let fail fmt = Format.kasprintf (fun s -> prerr_endline ("trace_smoke: " ^ s); exit 1) fmt

let known_events =
  [
    "span_begin";
    "span_end";
    "step";
    "incumbent";
    "summary";
    (* error-path records: ucp_solve flushes its sinks on load failures
       and caught crashes, and the serve daemon logs isolated per-request
       crashes — all with a well-formed trace line *)
    "error";
    "serve.crash";
    (* one per daemon request when the daemon itself is traced; carries
       the trace id that joins the stream to the access log *)
    "serve.request";
  ]

let float_field r name =
  match Option.bind (Json.member name r) Json.to_float with
  | Some v -> v
  | None -> fail "record %s lacks float field %S" (Json.to_string r) name

let str_field r name =
  match Option.bind (Json.member name r) Json.to_str with
  | Some v -> v
  | None -> fail "record %s lacks string field %S" (Json.to_string r) name

(* span_end gauges: {"name":{"v":sample,"d":delta}, ...}; the GC gauges
   are built into every collector, and the monotone meters (allocation
   counters, ZDD occupancy peaks) must never run backwards *)
let validate_span_gauges ~source ~lineno ~last_peaks r =
  let gauges =
    match Json.member "gauges" r with
    | Some (Json.Obj fields) -> fields
    | Some _ -> fail "%s:%d: span_end \"gauges\" is not an object" source lineno
    | None -> fail "%s:%d: span_end lacks \"gauges\"" source lineno
  in
  let value name g field =
    match Option.bind (Json.member field g) Json.to_float with
    | Some v -> v
    | None -> fail "%s:%d: gauge %S lacks float %S" source lineno name field
  in
  List.iter
    (fun (name, g) ->
      let v = value name g "v" and d = value name g "d" in
      (match name with
      | "gc.minor_words" | "gc.promoted_words" | "gc.major_collections"
      | "zdd.peak_nodes" ->
        if d < 0. then
          fail "%s:%d: monotone gauge %S ran backwards (d = %g)" source lineno
            name d
      | _ -> ());
      if name = "zdd.peak_nodes" then begin
        (match Hashtbl.find_opt last_peaks name with
        | Some prev when v < prev ->
          fail "%s:%d: zdd.peak_nodes fell %g -> %g" source lineno prev v
        | _ -> ());
        Hashtbl.replace last_peaks name v
      end)
    gauges;
  if not (List.mem_assoc "gc.minor_words" gauges) then
    fail "%s:%d: span_end lacks the built-in gc.minor_words gauge" source lineno;
  match
    (List.assoc_opt "zdd.nodes" gauges, List.assoc_opt "zdd.peak_nodes" gauges)
  with
  | Some n, Some p ->
    let nv = value "zdd.nodes" n "v" and pv = value "zdd.peak_nodes" p "v" in
    if nv > pv then
      fail "%s:%d: zdd.nodes %g above zdd.peak_nodes %g" source lineno nv pv
  | _ -> ()

(* summary gauges: {"name":{"v":final,"peak":max-observed}, ...} *)
let validate_summary_gauges ~source ~lineno r =
  match Json.member "gauges" r with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, g) ->
        let v =
          match Option.bind (Json.member "v" g) Json.to_float with
          | Some v -> v
          | None -> fail "%s:%d: summary gauge %S lacks \"v\"" source lineno name
        and peak =
          match Option.bind (Json.member "peak" g) Json.to_float with
          | Some v -> v
          | None ->
            fail "%s:%d: summary gauge %S lacks \"peak\"" source lineno name
        in
        if v > peak then
          fail "%s:%d: summary gauge %S final %g above peak %g" source lineno
            name v peak)
      fields
  | Some _ -> fail "%s:%d: summary \"gauges\" is not an object" source lineno
  | None -> fail "%s:%d: summary lacks \"gauges\"" source lineno

let validate_lines ~source lines =
  if lines = [] then fail "%s: empty trace" source;
  let records =
    List.map
      (fun (lineno, l) ->
        match Json.of_string l with
        | Ok r -> (lineno, r)
        | Error e -> fail "%s:%d: unparseable line: %s" source lineno e)
      lines
  in
  let last_t = ref neg_infinity in
  let depth = ref 0 in
  let summaries = ref 0 in
  let last_peaks = Hashtbl.create 4 in
  List.iter
    (fun (lineno, r) ->
      let t = float_field r "t" in
      let ev = str_field r "ev" in
      if not (List.mem ev known_events) then
        fail "%s:%d: unknown record type %S" source lineno ev;
      if t < !last_t then
        fail "%s:%d: non-monotone timestamp %g after %g" source lineno t !last_t;
      last_t := t;
      (match ev with
      | "span_begin" ->
        ignore (str_field r "name");
        incr depth
      | "span_end" ->
        ignore (str_field r "name");
        ignore (float_field r "dur");
        validate_span_gauges ~source ~lineno ~last_peaks r;
        decr depth;
        if !depth < 0 then fail "%s:%d: span_end without begin" source lineno
      | "step" ->
        ignore (str_field r "phase");
        ignore (float_field r "value");
        ignore (float_field r "best")
      | "incumbent" -> ignore (float_field r "cost")
      | "summary" ->
        incr summaries;
        List.iter
          (fun f ->
            if Json.member f r = None then
              fail "%s:%d: summary lacks %S" source lineno f)
          [ "spans"; "counters"; "events" ];
        validate_summary_gauges ~source ~lineno r
      | _ -> ());
      if !summaries > 0 && ev <> "summary" then
        fail "%s:%d: record after the summary" source lineno)
    records;
  if !depth <> 0 then fail "%s: %d unclosed span(s)" source !depth;
  if !summaries <> 1 then fail "%s: %d summary records (want 1)" source !summaries;
  List.length records

let validate_file path =
  let ic = open_in path in
  let lines = ref [] and lineno = ref 0 in
  (try
     while true do
       incr lineno;
       lines := (!lineno, input_line ic) :: !lines
     done
   with End_of_file -> close_in ic);
  let n = validate_lines ~source:path (List.rev !lines) in
  Format.printf "trace_smoke: %s ok (%d records)@." path n

(* --stats-json output: one object with solver fields and the aggregated
   telemetry summary *)
let validate_stats path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Json.of_string (String.trim text) with
  | Error e -> fail "%s: unparseable stats: %s" path e
  | Ok r ->
    if Json.member "solver" r = None then fail "%s: stats lack \"solver\"" path;
    (match Json.member "telemetry" r with
    | None -> fail "%s: stats lack \"telemetry\"" path
    | Some tel ->
      List.iter
        (fun f ->
          if Json.member f tel = None then
            fail "%s: stats telemetry lacks %S" path f)
        [ "elapsed"; "spans"; "counters" ]);
    Format.printf "trace_smoke: %s ok (stats)@." path

(* --validate-access: the daemon's request log is JSON lines, one object
   per finished request, with a fixed field set.  The smoke pipeline
   points this at a log produced by a real ucp_serve under ucp_load, so
   the schema checked here is the schema the shipped daemon writes. *)
let access_verbs = [ "SOLVE"; "PING"; "STATS"; "HEALTH"; "-" ]
let access_formats = [ "ucp"; "orlib"; "pla"; "kiss"; "-" ]
let access_cache = [ "hit"; "miss"; "-" ]

let access_codes =
  [
    "OK"; "FEASIBLE_BUDGET"; "INFEASIBLE"; "PARSE_ERROR"; "OVERLOAD";
    "SHUTDOWN"; "INTERNAL_ERROR";
    (* connection outcomes that never reached a response *)
    "TIMEOUT"; "EOF";
  ]

let validate_access path =
  let ic = open_in path in
  let lines = ref [] and lineno = ref 0 in
  (try
     while true do
       incr lineno;
       lines := (!lineno, input_line ic) :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  if lines = [] then fail "%s: empty access log" path;
  let enum_field r lineno name allowed =
    let v = str_field r name in
    if not (List.mem v allowed) then
      fail "%s:%d: field %S has unknown value %S" path lineno name v;
    v
  in
  List.iter
    (fun (lineno, l) ->
      let r =
        match Json.of_string l with
        | Ok r -> r
        | Error e -> fail "%s:%d: unparseable access line: %s" path lineno e
      in
      ignore (float_field r "t");
      if str_field r "trace" = "" then
        fail "%s:%d: empty trace id" path lineno;
      ignore (enum_field r lineno "verb" access_verbs);
      ignore (enum_field r lineno "format" access_formats);
      ignore (str_field r "id");
      ignore (str_field r "digest");
      ignore (enum_field r lineno "code" access_codes);
      ignore (enum_field r lineno "cache" access_cache);
      List.iter
        (fun f ->
          if float_field r f < 0. then
            fail "%s:%d: negative %S" path lineno f)
        [ "queue_wait_s"; "solve_s"; "total_s" ];
      match Option.bind (Json.member "bytes_in" r) Json.to_float with
      | Some b when b >= 0. -> ()
      | Some _ -> fail "%s:%d: negative bytes_in" path lineno
      | None -> fail "%s:%d: access line lacks bytes_in" path lineno)
    lines;
  Format.printf "trace_smoke: %s ok (%d access records)@." path
    (List.length lines)

let run_suite () =
  let instances = Benchsuite.Registry.difficult () in
  List.iter
    (fun inst ->
      let name = inst.Benchsuite.Registry.name in
      let lines = ref [] and lineno = ref 0 in
      let t =
        Telemetry.create
          ~trace:(fun l ->
            incr lineno;
            lines := (!lineno, l) :: !lines)
          ()
      in
      let m = Benchsuite.Registry.matrix inst in
      let r = Scg.solve ~telemetry:t m in
      Telemetry.close t;
      let n = validate_lines ~source:name (List.rev !lines) in
      (* cross-check the stream against the solver's own accounting *)
      if
        Telemetry.counter t "subgradient.steps"
        <> r.Scg.stats.Scg.Stats.subgradient_steps
      then fail "%s: telemetry step count disagrees with Stats" name;
      if not (Covering.Matrix.covers m r.Scg.solution) then
        fail "%s: solution does not cover" name;
      Format.printf "trace_smoke: %-10s ok (%d records, cost %d)@." name n r.Scg.cost)
    instances

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> run_suite ()
  | [ _; "--validate"; path ] -> validate_file path
  | [ _; "--validate-stats"; path ] -> validate_stats path
  | [ _; "--validate-access"; path ] -> validate_access path
  | _ ->
    prerr_endline
      "usage: trace_smoke [--validate FILE | --validate-stats FILE | \
       --validate-access FILE]";
    exit 2
