(* Tests for the covering substrate: matrix mechanics, reductions,
   bounds, greedy, partitioning, the exact solver, and the implicit
   (ZDD) reduction phase — each checked against brute force or a model. *)

open Covering
module TS = Test_support

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Matrix                                                             *)
(* ------------------------------------------------------------------ *)

let m_abc () =
  (* rows: {0,1}, {1,2}, {2}; costs 1,2,3 *)
  Matrix.create ~cost:[| 1; 2; 3 |] ~n_cols:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 2 ] ]

let test_matrix_create () =
  let m = m_abc () in
  Alcotest.(check int) "rows" 3 (Matrix.n_rows m);
  Alcotest.(check int) "cols" 3 (Matrix.n_cols m);
  Alcotest.(check int) "nnz" 5 (Matrix.nnz m);
  Alcotest.(check (list int)) "col 1" [ 0; 1 ] (Array.to_list (Matrix.col m 1));
  Matrix.transpose_check m;
  check "covers" true (Matrix.covers m [ 0; 2 ]);
  check "row 2 needs col 2" false (Matrix.covers m [ 0; 1 ]);
  Alcotest.(check int) "cost_of" 4 (Matrix.cost_of m [ 0; 2 ])

let test_matrix_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "empty row" true (raises (fun () -> ignore (Matrix.create ~n_cols:2 [ [] ])));
  check "out of range" true (raises (fun () -> ignore (Matrix.create ~n_cols:2 [ [ 2 ] ])));
  check "dup col" true (raises (fun () -> ignore (Matrix.create ~n_cols:2 [ [ 0; 0 ] ])));
  check "bad cost" true
    (raises (fun () -> ignore (Matrix.create ~cost:[| 0 |] ~n_cols:1 [ [ 0 ] ])))

let test_matrix_submatrix () =
  let m = m_abc () in
  let sub =
    Matrix.submatrix m ~keep_rows:[| true; false; true |] ~keep_cols:[| true; false; true |]
  in
  Alcotest.(check int) "rows" 2 (Matrix.n_rows sub);
  Alcotest.(check int) "cols" 2 (Matrix.n_cols sub);
  Alcotest.(check int) "row id" 2 (Matrix.row_id sub 1);
  Alcotest.(check int) "col id" 2 (Matrix.col_id sub 1);
  Alcotest.(check int) "cost preserved" 3 (Matrix.cost sub 1);
  Matrix.transpose_check sub

let test_matrix_irredundant () =
  let m = Matrix.create ~n_cols:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ] in
  let sol = Matrix.irredundant m [ 0; 1; 2 ] in
  check "still covers" true (Matrix.covers m sol);
  Alcotest.(check int) "dropped one" 2 (List.length sol)

let test_matrix_zdd_round_trip () =
  let m = TS.small_matrix_of_seed 7 in
  let z = Matrix.to_zdd m in
  Alcotest.(check int)
    "row count"
    (* duplicate rows collapse in the set representation *)
    (List.sort_uniq Stdlib.compare
       (List.init (Matrix.n_rows m) (fun i -> Array.to_list (Matrix.row m i)))
    |> List.length)
    (int_of_float (Zdd.count z))

let test_matrix_virtual_column () =
  let m = m_abc () in
  let m' = Matrix.add_virtual_column m ~cost:7 ~id:99 ~rows:[ 0; 2 ] in
  Alcotest.(check int) "cols" 4 (Matrix.n_cols m');
  Alcotest.(check int) "virtual id" 99 (Matrix.col_id m' 3);
  Alcotest.(check int) "virtual cost" 7 (Matrix.cost m' 3);
  Alcotest.(check (list int)) "virtual rows" [ 0; 2 ] (Array.to_list (Matrix.col m' 3));
  Matrix.transpose_check m';
  Alcotest.(check (option int)) "lookup by id" (Some 3) (Matrix.col_index_of_id m' 99)

let test_matrix_submatrix_infeasible () =
  let m = m_abc () in
  (* dropping column 2 strands row {2} *)
  match
    Matrix.submatrix m ~keep_rows:[| true; true; true |]
      ~keep_cols:[| true; true; false |]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_matrix_density () =
  let m = m_abc () in
  Alcotest.(check (float 1e-9)) "density" (5. /. 9.) (Matrix.density m);
  let empty = Matrix.create ~n_cols:4 [] in
  Alcotest.(check (float 0.)) "empty density" 0. (Matrix.density empty)

let test_irredundant_rejects_non_cover () =
  let m = m_abc () in
  match Matrix.irredundant m [ 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Reduce                                                             *)
(* ------------------------------------------------------------------ *)

let test_essential_detection () =
  let m = m_abc () in
  Alcotest.(check (list int)) "essential" [ 2 ] (Reduce.essential_columns m)

let test_row_dominance () =
  (* row {0,1,2} is a superset of row {1} and must go *)
  let m = Matrix.create ~n_cols:3 [ [ 0; 1; 2 ]; [ 1 ]; [ 0; 2 ] ] in
  let dr = Reduce.dominated_rows m in
  Alcotest.(check (list bool)) "dominated" [ true; false; false ] (Array.to_list dr)

let test_col_dominance () =
  (* col 0 ⊂ col 1 with equal costs: 0 is dominated *)
  let m = Matrix.create ~n_cols:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 1 ] ] in
  let dc = Reduce.dominated_columns m in
  check "col 0 dominated" true dc.(0);
  check "col 1 kept" true (not dc.(1))

let test_cyclic_core_solves_triangle () =
  (* essential then cascade: classic fully-reducible instance *)
  let m = Matrix.create ~n_cols:3 [ [ 2 ]; [ 1; 2 ]; [ 0; 1 ] ] in
  let r = Reduce.cyclic_core m in
  check "core empty" true (Matrix.is_empty r.Reduce.core);
  let sol = Reduce.lift r.Reduce.trace [] in
  check "lifted covers" true (Matrix.covers m sol);
  Alcotest.(check int) "cost" r.Reduce.fixed_cost (Matrix.cost_of m sol)

let test_cyclic_core_of_cycle () =
  (* odd cycle: nothing reduces *)
  let m = TS.c5_matrix () in
  let r = Reduce.cyclic_core m in
  Alcotest.(check int) "rows kept" 5 (Matrix.n_rows r.Reduce.core);
  Alcotest.(check int) "cols kept" 5 (Matrix.n_cols r.Reduce.core);
  Alcotest.(check int) "no fixed cost" 0 r.Reduce.fixed_cost

let test_gimpel_triggers () =
  (* row {0,1} with col 0 only there and strictly cheaper: Gimpel folds.
     rows: {0,1}, {1,2}, {2,3}; costs: c0=1 c1=3 c2=1 c3=2 *)
  let m =
    Matrix.create ~cost:[| 1; 3; 1; 2 |] ~n_cols:4 [ [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] ]
  in
  let opt_direct = Exact.brute_force m in
  let r = Reduce.cyclic_core ~gimpel:true m in
  (* solving the core then lifting must reproduce the optimal cost *)
  let core_opt = if Matrix.is_empty r.Reduce.core then [] else Exact.brute_force r.Reduce.core in
  let lifted = Reduce.lift r.Reduce.trace core_opt in
  check "lifted covers" true (Matrix.covers m lifted);
  Alcotest.(check int)
    "lifted optimal"
    (Matrix.cost_of m opt_direct)
    (Matrix.cost_of m lifted)

let test_step_none_on_cyclic_core () =
  let m = TS.c5_matrix () in
  let next_virtual_id = ref 100 in
  check "no step applies" true (Reduce.step ~next_virtual_id m = None);
  check "empty matrix: no step" true
    (Reduce.step ~next_virtual_id (Matrix.create ~n_cols:2 []) = None)

let prop_reductions_preserve_optimum =
  QCheck.Test.make ~name:"cyclic core preserves the optimum" ~count:120 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let direct = Matrix.cost_of m (Exact.brute_force m) in
      let r = Reduce.cyclic_core ~gimpel:true m in
      let core_sol =
        if Matrix.is_empty r.Reduce.core then [] else Exact.brute_force r.Reduce.core
      in
      let lifted = Reduce.lift r.Reduce.trace core_sol in
      Matrix.covers m lifted && Matrix.cost_of m lifted = direct)

let prop_lift_cost_consistent =
  QCheck.Test.make ~name:"fixed_cost + core cost = lifted cost" ~count:120 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let r = Reduce.cyclic_core ~gimpel:true m in
      let core_sol =
        if Matrix.is_empty r.Reduce.core then []
        else Exact.brute_force r.Reduce.core
      in
      let core_cost =
        if Matrix.is_empty r.Reduce.core then 0
        else Matrix.cost_of_ids ~original:r.Reduce.core core_sol
      in
      Reduce.lifted_cost ~original:m r.Reduce.trace core_sol
      = r.Reduce.fixed_cost + core_cost)

(* ------------------------------------------------------------------ *)
(* Bounds, greedy, partition                                          *)
(* ------------------------------------------------------------------ *)

let test_mis_on_fig1 () =
  let m = TS.fig1_matrix () in
  let mis = Mis_bound.compute m in
  check "independent" true (Mis_bound.is_independent m mis.Mis_bound.rows);
  Alcotest.(check int) "bound is 1" 1 mis.Mis_bound.bound

let test_mis_on_c5 () =
  let m = TS.c5_matrix () in
  let mis = Mis_bound.compute m in
  Alcotest.(check int) "bound is 2" 2 mis.Mis_bound.bound

let prop_mis_below_optimum =
  QCheck.Test.make ~name:"MIS bound <= optimum" ~count:150 TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let mis = Mis_bound.compute m in
      Mis_bound.is_independent m mis.Mis_bound.rows
      && mis.Mis_bound.bound <= Matrix.cost_of m (Exact.brute_force m))

let prop_greedy_feasible =
  QCheck.Test.make ~name:"greedy covers, irredundant, >= optimum" ~count:150 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let opt = Matrix.cost_of m (Exact.brute_force m) in
      List.for_all
        (fun rule ->
          let sol = Greedy.solve ~rule m in
          Matrix.covers m sol && Matrix.cost_of m sol >= opt)
        Greedy.all_rules)

let test_greedy_infeasible () =
  (* a matrix with an uncoverable row (only constructible through
     of_parts — create rejects empty rows): the greedy must raise the
     typed Infeasible naming the offending row, not an Assert_failure *)
  let m =
    Matrix.of_parts ~n_cols:2
      ~rows:[| [| 0 |]; [||]; [| 1 |] |]
      ~cost:[| 1; 1 |] ~row_ids:[| 10; 11; 12 |] ~col_ids:[| 0; 1 |]
  in
  let expects_infeasible f =
    match f m with
    | _ -> Alcotest.fail "expected Covering.Infeasible"
    | exception Infeasible { row; row_id } ->
      Alcotest.(check int) "row index" 1 row;
      Alcotest.(check int) "row identifier" 11 row_id
  in
  expects_infeasible Greedy.solve;
  expects_infeasible Greedy.solve_best;
  expects_infeasible Greedy.solve_exchange;
  (* the exception prints usefully (registered printer) *)
  check "printer" true
    (try
       ignore (Greedy.solve m);
       false
     with e ->
       let s = Printexc.to_string e in
       String.length s > 0 && s <> "Covering__Infeasible.Infeasible")

let prop_exchange_no_worse =
  QCheck.Test.make ~name:"1-exchange never worse than plain greedy" ~count:100
    TS.arb_seed (fun seed ->
      let m = TS.medium_matrix_of_seed seed in
      let base = Matrix.cost_of m (Greedy.solve_best m) in
      let improved = Matrix.cost_of m (Greedy.solve_exchange m) in
      Matrix.covers m (Greedy.solve_exchange m) && improved <= base)

let test_partition_blocks () =
  (* two independent blocks *)
  let m = Matrix.create ~n_cols:4 [ [ 0; 1 ]; [ 0 ]; [ 2; 3 ]; [ 3 ] ] in
  let comps = Partition.components m in
  Alcotest.(check int) "two components" 2 (List.length comps);
  let subs = Partition.split m in
  List.iter (fun s -> check "non-empty" true (Matrix.n_rows s > 0)) subs;
  let sol, cost =
    Partition.solve_componentwise
      (fun sub ->
        let ids = Exact.brute_force sub in
        (ids, Matrix.cost_of_ids ~original:sub ids))
      m
  in
  check "combined covers" true (Matrix.covers m sol);
  Alcotest.(check int) "combined optimal" (Matrix.cost_of m (Exact.brute_force m)) cost

(* ------------------------------------------------------------------ *)
(* Strengthened bounds                                                *)
(* ------------------------------------------------------------------ *)

let prop_row_induced_is_lower_bound =
  QCheck.Test.make ~name:"row-induced bound <= optimum, any row set" ~count:120
    (QCheck.pair TS.arb_seed TS.arb_seed) (fun (seed, rseed) ->
      let m = TS.small_matrix_of_seed seed in
      let rng = Random.State.make [| rseed |] in
      let rows =
        List.filter
          (fun _ -> Random.State.bool rng)
          (List.init (Matrix.n_rows m) Fun.id)
      in
      Bounds.row_induced m ~rows <= Matrix.cost_of m (Exact.brute_force m))

let prop_strengthened_dominates_mis =
  QCheck.Test.make ~name:"strengthened MIS in [MIS, OPT]" ~count:120 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let mis = (Mis_bound.compute m).Mis_bound.bound in
      let s = Bounds.strengthened_mis m in
      mis <= s && s <= Matrix.cost_of m (Exact.brute_force m))

let test_row_induced_full_is_optimum () =
  let m = TS.c5_matrix () in
  let all_rows = List.init (Matrix.n_rows m) Fun.id in
  Alcotest.(check int) "full set = optimum" 3 (Bounds.row_induced m ~rows:all_rows);
  Alcotest.(check int) "empty set = 0" 0 (Bounds.row_induced m ~rows:[])

let test_strengthened_beats_mis_on_c5 () =
  (* plain MIS on C5 is 2; the induced subproblem on MIS + extra rows is
     the whole odd cycle, whose optimum is 3 *)
  let m = TS.c5_matrix () in
  Alcotest.(check int) "strengthened reaches 3" 3 (Bounds.strengthened_mis m)

let prop_exact_with_extra_bound_agrees =
  QCheck.Test.make ~name:"exact with strengthened bound stays exact" ~count:60
    TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let plain = Exact.solve m in
      let strong = Exact.solve ~extra_bound:(Bounds.strengthened_mis ~extra_rows:3) m in
      strong.Exact.optimal && strong.Exact.cost = plain.Exact.cost)

(* ------------------------------------------------------------------ *)
(* Exact                                                              *)
(* ------------------------------------------------------------------ *)

let prop_exact_matches_brute_force =
  QCheck.Test.make ~name:"branch and bound = brute force" ~count:150 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let bf = Matrix.cost_of m (Exact.brute_force m) in
      let r = Exact.solve m in
      r.Exact.optimal && r.Exact.cost = bf && Matrix.covers m r.Exact.solution
      && r.Exact.lower_bound = r.Exact.cost)

let prop_exact_uniform =
  QCheck.Test.make ~name:"branch and bound = brute force (uniform)" ~count:100
    TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed ~uniform:true seed in
      let bf = Matrix.cost_of m (Exact.brute_force m) in
      let r = Exact.solve m in
      r.Exact.optimal && r.Exact.cost = bf)

let test_exact_fig1 () =
  let r = Exact.solve (TS.fig1_matrix ()) in
  Alcotest.(check int) "optimum 3" 3 r.Exact.cost;
  check "optimal" true r.Exact.optimal

let test_exact_ub_parameter () =
  let m = TS.c5_matrix () in
  (* priming with the true optimum still returns a solution and proves it *)
  let r = Exact.solve ~ub:3 m in
  check "solution found at ub" true (r.Exact.cost = 3 && r.Exact.optimal);
  (* an unreachable ub prunes everything: no proven solution *)
  let r2 = Exact.solve ~ub:2 m in
  check "not proven under tight ub" true (not r2.Exact.optimal);
  check "fallback still covers" true (Matrix.covers m r2.Exact.solution)

let test_exact_node_budget () =
  (* two disjoint odd cycles: irreducible, so the root must branch and the
     one-node budget runs out *)
  let rows5 base = List.init 5 (fun i -> [ base + i; base + ((i + 1) mod 5) ]) in
  let m = Matrix.create ~n_cols:10 (rows5 0 @ rows5 5) in
  let r = Exact.solve ~max_nodes:1 m in
  check "not proven" true (not r.Exact.optimal);
  check "still feasible" true (Matrix.covers m r.Exact.solution);
  check "lb <= cost" true (r.Exact.lower_bound <= r.Exact.cost)

(* ------------------------------------------------------------------ *)
(* Implicit                                                           *)
(* ------------------------------------------------------------------ *)

let test_implicit_essentials () =
  let m = m_abc () in
  let t = Implicit.reduce (Implicit.of_matrix m) in
  let rest, ess = Implicit.decode t in
  Alcotest.(check (list int)) "essential col" [ 2 ] ess;
  (* only row {0,1} survives: essentiality killed the others, and column
     dominance is deliberately left to the explicit phase *)
  Alcotest.(check int) "one row left" 1 (Matrix.n_rows rest);
  Alcotest.(check (list int)) "row content" [ 0; 1 ] (Array.to_list (Matrix.row rest 0))

let prop_implicit_agrees_with_explicit =
  QCheck.Test.make ~name:"implicit reductions preserve the optimum" ~count:120
    TS.arb_seed (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let direct = Matrix.cost_of m (Exact.brute_force m) in
      let t = Implicit.reduce ~max_rows:0 (Implicit.of_matrix m) in
      let rest, ess = Implicit.decode t in
      let ess_cost = List.fold_left (fun a j -> a + Matrix.cost m j) 0 ess in
      let rest_cost =
        if Matrix.is_empty rest then 0
        else Matrix.cost_of_ids ~original:rest (Exact.brute_force rest)
      in
      (* essentials + the optimum of the residual = the optimum; note the
         residual may still contain redundant columns, which is fine *)
      ess_cost + rest_cost = direct)

let prop_implicit_row_dominance_is_minimal =
  QCheck.Test.make ~name:"dominance step yields an antichain" ~count:100 TS.arb_seed
    (fun seed ->
      let m = TS.small_matrix_of_seed seed in
      let t = Implicit.of_matrix m in
      let t = match Implicit.dominance_step t with Some t' -> t' | None -> t in
      Zdd.equal (Zdd.minimal t.Implicit.rows) t.Implicit.rows)

(* ------------------------------------------------------------------ *)
(* Instance format                                                    *)
(* ------------------------------------------------------------------ *)

let test_instance_round_trip () =
  let m = TS.small_matrix_of_seed 5 in
  let m2 = Instance.parse (Instance.to_string m) in
  Alcotest.(check int) "rows" (Matrix.n_rows m) (Matrix.n_rows m2);
  Alcotest.(check int) "cols" (Matrix.n_cols m) (Matrix.n_cols m2);
  for i = 0 to Matrix.n_rows m - 1 do
    Alcotest.(check (list int))
      "row" (Array.to_list (Matrix.row m i))
      (Array.to_list (Matrix.row m2 i))
  done;
  for j = 0 to Matrix.n_cols m - 1 do
    Alcotest.(check int) "cost" (Matrix.cost m j) (Matrix.cost m2 j)
  done

let test_orlib_round_trip () =
  let m = TS.small_matrix_of_seed 17 in
  let m2 = Instance.parse_orlib (Instance.to_orlib m) in
  Alcotest.(check int) "rows" (Matrix.n_rows m) (Matrix.n_rows m2);
  Alcotest.(check int) "cols" (Matrix.n_cols m) (Matrix.n_cols m2);
  for i = 0 to Matrix.n_rows m - 1 do
    Alcotest.(check (list int))
      "row" (Array.to_list (Matrix.row m i))
      (Array.to_list (Matrix.row m2 i))
  done;
  for j = 0 to Matrix.n_cols m - 1 do
    Alcotest.(check int) "cost" (Matrix.cost m j) (Matrix.cost m2 j)
  done

let test_orlib_literal () =
  (* hand-written tiny instance in Beasley's layout *)
  let text = "2 3\n5 1 9\n2\n1 2\n1\n3\n" in
  let m = Instance.parse_orlib text in
  Alcotest.(check int) "rows" 2 (Matrix.n_rows m);
  Alcotest.(check (list int)) "row 0" [ 0; 1 ] (Array.to_list (Matrix.row m 0));
  Alcotest.(check (list int)) "row 1" [ 2 ] (Array.to_list (Matrix.row m 1));
  Alcotest.(check int) "cost 1" 1 (Matrix.cost m 1)

let test_orlib_errors () =
  let raises s =
    try ignore (Instance.parse_orlib s); false
    with Logic.Parse_error.Parse_error _ -> true
  in
  check "truncated" true (raises "2 3\n1 1 1\n2\n1 2\n");
  check "out of range" true (raises "1 2\n1 1\n1\n3\n");
  check "trailing" true (raises "1 1\n1\n1\n1\n99\n");
  check "bad token" true (raises "1 x\n");
  check "negative count" true (raises "1 1\n1\n-1\n")

let test_orlib_infeasible () =
  (* a zero column count is well-formed orlib data declaring a row no
     column covers — semantic infeasibility, typed as such rather than
     as a syntax error *)
  match Instance.parse_orlib "2 2\n1 1\n1\n1\n0\n" with
  | _ -> Alcotest.fail "expected Covering.Infeasible"
  | exception Infeasible { row = 1; row_id = 1 } -> ()

let test_instance_errors () =
  let raises s =
    try ignore (Instance.parse s); false
    with Logic.Parse_error.Parse_error _ -> true
  in
  check "no p line" true (raises "r 0 1\n");
  check "row count" true (raises "p ucp 2 3\nr 0\n");
  check "bad token" true (raises "p ucp 1 1\nq 0\n")

(* ------------------------------------------------------------------ *)
(* From_logic                                                         *)
(* ------------------------------------------------------------------ *)

let test_from_logic_small () =
  (* f = x0 x1 + x0' x2 over 3 vars *)
  let on =
    Logic.Cover.of_cubes 3 [ Logic.Cube.of_string "11-"; Logic.Cube.of_string "0-1" ]
  in
  let dc = Logic.Cover.empty 3 in
  let b = From_logic.build ~on ~dc () in
  let r = Exact.solve b.From_logic.matrix in
  check "optimal" true r.Exact.optimal;
  Alcotest.(check int) "two products suffice" 2 r.Exact.cost;
  check "verifies" true (From_logic.verify_solution b r.Exact.solution);
  let cover = From_logic.cover_of_solution b r.Exact.solution in
  check "semantics preserved" true (Logic.Cover.equal_semantics cover on)

let test_from_logic_lexicographic () =
  (* maj3 has a unique minimal cover; the lexicographic objective must
     pick the same number of products and report products*(n+1)+literals *)
  let on =
    Logic.Cover.of_cubes 3
      (List.map Logic.Cube.of_string [ "11-"; "1-1"; "-11" ])
  in
  let dc = Logic.Cover.empty 3 in
  let b =
    From_logic.build ~cost:(From_logic.lexicographic_cost ~nvars:3) ~on ~dc ()
  in
  let r = Exact.solve b.From_logic.matrix in
  check "optimal" true r.Exact.optimal;
  (* 3 products of 2 literals each: 3*(3+1) + 6 = 18 *)
  Alcotest.(check int) "lexicographic value" 18 r.Exact.cost;
  let cover = From_logic.cover_of_solution b r.Exact.solution in
  Alcotest.(check int) "three products" 3 (Logic.Cover.size cover);
  Alcotest.(check int) "six literals" 6 (Logic.Cover.literal_cost cover)

let test_build_implicit_agrees () =
  (* the implicit matrix is the explicit one after duplicate-row removal:
     same optimum, same primes *)
  let rng = Random.State.make [| 2024 |] in
  for _ = 1 to 15 do
    let n = 3 + Random.State.int rng 3 in
    let cube () =
      Logic.Cube.of_string
        (String.init n (fun _ ->
             match Random.State.int rng 3 with
             | 0 -> '0'
             | 1 -> '1'
             | _ -> '-'))
    in
    let on = Logic.Cover.of_cubes n (List.init (2 + Random.State.int rng 4) (fun _ -> cube ())) in
    let dc = Logic.Cover.of_cubes n (List.init (Random.State.int rng 2) (fun _ -> cube ())) in
    match From_logic.build_implicit ~on ~dc () with
    | exception Invalid_argument _ -> () (* ON ⊆ DC: nothing to cover *)
    | imp ->
      let exp = From_logic.build ~on ~dc () in
      Alcotest.(check int) "same columns"
        (Matrix.n_cols exp.From_logic.matrix)
        (Matrix.n_cols imp.From_logic.imatrix);
      check "fewer or equal rows" true
        (Matrix.n_rows imp.From_logic.imatrix <= max 1 (Matrix.n_rows exp.From_logic.matrix));
      let oi = Exact.solve imp.From_logic.imatrix in
      let oe = Exact.solve exp.From_logic.matrix in
      Alcotest.(check int) "same optimum" oe.Exact.cost oi.Exact.cost;
      check "verified by BDD" true
        (From_logic.verify_implicit imp oi.Exact.solution)
  done

let test_build_implicit_wide_inputs () =
  (* 30 inputs: far beyond the minterm-expansion cap, trivial structure *)
  let n = 30 in
  let on =
    Logic.Cover.of_cubes n
      [
        Logic.Cube.of_literals n [ (0, true); (1, true) ];
        Logic.Cube.of_literals n [ (0, false); (2, true) ];
      ]
  in
  let imp = From_logic.build_implicit ~on ~dc:(Logic.Cover.empty n) () in
  check "rows stay tiny" true (Matrix.n_rows imp.From_logic.imatrix <= 8);
  let r = Exact.solve imp.From_logic.imatrix in
  Alcotest.(check int) "two products" 2 r.Exact.cost;
  check "verified" true (From_logic.verify_implicit imp r.Exact.solution)

let test_from_logic_with_dc () =
  (* ON = {11}, DC = {10}: the single prime 1- covers everything *)
  let on = Logic.Cover.of_cubes 2 [ Logic.Cube.of_string "11" ] in
  let dc = Logic.Cover.of_cubes 2 [ Logic.Cube.of_string "10" ] in
  let b = From_logic.build ~on ~dc () in
  let r = Exact.solve b.From_logic.matrix in
  Alcotest.(check int) "one product" 1 r.Exact.cost

let () =
  Alcotest.run "covering"
    [
      ( "matrix",
        [
          Alcotest.test_case "create" `Quick test_matrix_create;
          Alcotest.test_case "validation" `Quick test_matrix_validation;
          Alcotest.test_case "submatrix" `Quick test_matrix_submatrix;
          Alcotest.test_case "irredundant" `Quick test_matrix_irredundant;
          Alcotest.test_case "zdd round trip" `Quick test_matrix_zdd_round_trip;
          Alcotest.test_case "virtual column" `Quick test_matrix_virtual_column;
          Alcotest.test_case "infeasible submatrix" `Quick test_matrix_submatrix_infeasible;
          Alcotest.test_case "density" `Quick test_matrix_density;
          Alcotest.test_case "irredundant guard" `Quick test_irredundant_rejects_non_cover;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "essential" `Quick test_essential_detection;
          Alcotest.test_case "row dominance" `Quick test_row_dominance;
          Alcotest.test_case "col dominance" `Quick test_col_dominance;
          Alcotest.test_case "triangle solves" `Quick test_cyclic_core_solves_triangle;
          Alcotest.test_case "cycle is core" `Quick test_cyclic_core_of_cycle;
          Alcotest.test_case "gimpel" `Quick test_gimpel_triggers;
          Alcotest.test_case "step fixpoint" `Quick test_step_none_on_cyclic_core;
          QCheck_alcotest.to_alcotest prop_reductions_preserve_optimum;
          QCheck_alcotest.to_alcotest prop_lift_cost_consistent;
        ] );
      ( "bounds and greedy",
        [
          Alcotest.test_case "mis fig1" `Quick test_mis_on_fig1;
          Alcotest.test_case "mis c5" `Quick test_mis_on_c5;
          QCheck_alcotest.to_alcotest prop_mis_below_optimum;
          QCheck_alcotest.to_alcotest prop_greedy_feasible;
          QCheck_alcotest.to_alcotest prop_exchange_no_worse;
          Alcotest.test_case "greedy infeasible" `Quick test_greedy_infeasible;
          Alcotest.test_case "partition" `Quick test_partition_blocks;
        ] );
      ( "bounds",
        [
          QCheck_alcotest.to_alcotest prop_row_induced_is_lower_bound;
          QCheck_alcotest.to_alcotest prop_strengthened_dominates_mis;
          Alcotest.test_case "row induced extremes" `Quick test_row_induced_full_is_optimum;
          Alcotest.test_case "c5 strengthened" `Quick test_strengthened_beats_mis_on_c5;
          QCheck_alcotest.to_alcotest prop_exact_with_extra_bound_agrees;
        ] );
      ( "exact",
        [
          QCheck_alcotest.to_alcotest prop_exact_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_exact_uniform;
          Alcotest.test_case "fig1" `Quick test_exact_fig1;
          Alcotest.test_case "ub parameter" `Quick test_exact_ub_parameter;
          Alcotest.test_case "node budget" `Quick test_exact_node_budget;
        ] );
      ( "implicit",
        [
          Alcotest.test_case "essentials" `Quick test_implicit_essentials;
          QCheck_alcotest.to_alcotest prop_implicit_agrees_with_explicit;
          QCheck_alcotest.to_alcotest prop_implicit_row_dominance_is_minimal;
        ] );
      ( "instance",
        [
          Alcotest.test_case "round trip" `Quick test_instance_round_trip;
          Alcotest.test_case "errors" `Quick test_instance_errors;
          Alcotest.test_case "orlib round trip" `Quick test_orlib_round_trip;
          Alcotest.test_case "orlib literal" `Quick test_orlib_literal;
          Alcotest.test_case "orlib errors" `Quick test_orlib_errors;
          Alcotest.test_case "orlib infeasible" `Quick test_orlib_infeasible;
        ] );
      ( "from_logic",
        [
          Alcotest.test_case "small" `Quick test_from_logic_small;
          Alcotest.test_case "lexicographic" `Quick test_from_logic_lexicographic;
          Alcotest.test_case "implicit build" `Quick test_build_implicit_agrees;
          Alcotest.test_case "implicit wide" `Quick test_build_implicit_wide_inputs;
          Alcotest.test_case "with dc" `Quick test_from_logic_with_dc;
        ] );
    ]
