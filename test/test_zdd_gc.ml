(* The ZDD manager lifecycle: root pinning, generational mark-and-sweep,
   cache invalidation on collection, and the chain fast paths.

   The load-bearing properties: (1) collection never changes any solver
   answer — differential runs with GC forced at a tiny threshold, GC
   off, and chain reduction toggled must be bit-identical; (2) rooted
   families survive collection with canonicity intact (rebuilding an
   identical family yields the physically equal node); (3) released
   roots — including releases from another domain, the serve-cache
   invalidation path — actually die.

   Solver-level differentials run in fresh spawned domains: a child
   domain gets a pristine manager, so node counts and collection
   schedules are deterministic regardless of what earlier tests did to
   this domain's table. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let restore_defaults () =
  Zdd.configure ~initial_size:Zdd.default_initial_size
    ~gc_threshold:Zdd.default_gc_threshold ~chain_reduction:true ()

let with_config ?initial_size ?gc_threshold ?chain_reduction f =
  Zdd.configure ?initial_size ?gc_threshold ?chain_reduction ();
  Fun.protect ~finally:restore_defaults f

(* a family with internal sharing, plus garbage from intermediate ops *)
let build_family seed =
  let sets =
    List.init 24 (fun i ->
        List.init (3 + ((seed + i) mod 4)) (fun j -> (seed + (i * j)) mod 17))
  in
  Zdd.of_sets sets

(* ------------------------------------------------------------------ *)
(* collection basics                                                   *)
(* ------------------------------------------------------------------ *)

let test_collect_reclaims_garbage () =
  let live = build_family 1 in
  (* garbage: families used once and dropped *)
  for i = 2 to 10 do
    ignore (Zdd.union live (build_family i))
  done;
  let before = Zdd.node_count () in
  let reclaimed = Zdd.Gc.collect ~roots:[ live ] () in
  checkb "reclaimed something" true (reclaimed > 0);
  checki "occupancy dropped by reclaimed" (before - reclaimed) (Zdd.node_count ());
  checkb "live family intact" true (Zdd.count live > 0.)

let test_canonicity_after_collect () =
  let f = build_family 3 in
  let sets = Zdd.to_sets f in
  ignore (Zdd.Gc.collect ~roots:[ f ] ());
  (* rebuilding the same family must produce the physically equal root:
     the survivors stayed in the unique table and the caches were
     invalidated, so no duplicate of a live node can ever be built *)
  let g = Zdd.of_sets sets in
  checkb "canonical after sweep" true (Zdd.equal f g);
  (* operations on survivors still agree with the model *)
  checkb "union idempotent" true (Zdd.equal f (Zdd.union f g));
  checkb "minimal stable" true
    (Zdd.equal (Zdd.minimal f) (Zdd.minimal (Zdd.of_sets sets)))

let test_peak_monotone () =
  let f = build_family 5 in
  let peak_before = Zdd.peak_node_count () in
  ignore (Zdd.Gc.collect ~roots:[ f ] ());
  checkb "nodes <= peak" true (Zdd.node_count () <= Zdd.peak_node_count ());
  checkb "peak survives collection" true (Zdd.peak_node_count () >= peak_before)

(* ------------------------------------------------------------------ *)
(* roots                                                               *)
(* ------------------------------------------------------------------ *)

let test_root_survival () =
  let f = build_family 7 in
  let sets = Zdd.to_sets f in
  let handle = Zdd.Root.create f in
  (* no extra roots: the registered handle alone must pin the family *)
  ignore (Zdd.Gc.collect ());
  checkb "still registered" true (Zdd.Root.get handle <> None);
  checkb "family intact" true (Zdd.to_sets f = sets);
  checkb "still canonical" true (Zdd.equal f (Zdd.of_sets sets));
  (* release: the next collection reclaims the family's nodes *)
  let occupied = Zdd.node_count () in
  Zdd.Root.release handle;
  checkb "marked released" true (Zdd.Root.is_released handle);
  checkb "get after release" true (Zdd.Root.get handle = None);
  let reclaimed = Zdd.Gc.collect () in
  checkb "released nodes died" true (reclaimed > 0);
  checki "table shrank" (occupied - reclaimed) (Zdd.node_count ())

let test_cross_domain_release () =
  let f = build_family 9 in
  let handle = Zdd.Root.create f in
  (* another domain may not read the pinned value (foreign nodes must
     not leak into its own manager) but may release it *)
  let got_cross, released_cross =
    Domain.join
      (Domain.spawn (fun () ->
           let got = Zdd.Root.get handle in
           Zdd.Root.release handle;
           (got, Zdd.Root.is_released handle)))
  in
  checkb "cross-domain get refused" true (got_cross = None);
  checkb "cross-domain release lands" true released_cross;
  let reclaimed = Zdd.Gc.collect () in
  checkb "owner sweep frees it" true (reclaimed > 0);
  checkb "get sees the release" true (Zdd.Root.get handle = None)

(* ------------------------------------------------------------------ *)
(* automatic collection                                                *)
(* ------------------------------------------------------------------ *)

let test_maybe_collect_threshold () =
  with_config ~gc_threshold:256 (fun () ->
      let live = build_family 11 in
      let stats0 = Zdd.Gc.stats () in
      (* below threshold right after a collect: no-op *)
      ignore (Zdd.Gc.collect ~roots:[ live ] ());
      checkb "fresh counter" false (Zdd.Gc.maybe_collect ~roots:[ live ] ());
      (* allocate garbage well past the threshold *)
      for i = 20 to 40 do
        ignore (Zdd.union live (build_family i))
      done;
      checkb "past threshold" true (Zdd.Gc.maybe_collect ~roots:[ live ] ());
      checkb "collections counted" true
        ((Zdd.Gc.stats ()).Zdd.Gc.collections > stats0.Zdd.Gc.collections);
      (* the counter reset: an immediate retry is below threshold again *)
      checkb "counter reset" false (Zdd.Gc.maybe_collect ~roots:[ live ] ()))

let test_gc_disabled () =
  with_config ~gc_threshold:0 (fun () ->
      let live = build_family 13 in
      for i = 50 to 70 do
        ignore (Zdd.union live (build_family i))
      done;
      checkb "threshold 0 never collects" false
        (Zdd.Gc.maybe_collect ~roots:[ live ] ()))

(* ------------------------------------------------------------------ *)
(* solver differentials (fresh domain per run)                         *)
(* ------------------------------------------------------------------ *)

type run = {
  solution : int list;
  cost : int;
  lower_bound : int;
  proven_optimal : bool;
  collections : int;
  reclaimed : int;
  peak : int;
  chain_hits : int;
}

(* solve a registry instance in a pristine domain with the given manager
   tunables; Scg.solve itself applies them via Zdd.configure *)
let solve_fresh ~gc_threshold ~chain name =
  let r =
    Domain.join
      (Domain.spawn (fun () ->
           let m = Benchsuite.Registry.matrix (Benchsuite.Registry.find name) in
           let config =
             {
               Scg.Config.default with
               Scg.Config.zdd_gc_threshold = gc_threshold;
               zdd_chain_reduction = chain;
             }
           in
           let r = Scg.solve ~config m in
           let st = Zdd.Gc.stats () in
           {
             solution = r.Scg.solution;
             cost = r.Scg.cost;
             lower_bound = r.Scg.lower_bound;
             proven_optimal = r.Scg.proven_optimal;
             collections = st.Zdd.Gc.collections;
             reclaimed = st.Zdd.Gc.reclaimed_total;
             peak = Zdd.peak_node_count ();
             chain_hits = Zdd.chain_hit_count ();
           }))
  in
  (* the child's Scg.solve wrote the shared tunables; put them back *)
  restore_defaults ();
  r

let same_answer ctx a b =
  Alcotest.(check (list int)) (ctx ^ ": solution") a.solution b.solution;
  checki (ctx ^ ": cost") a.cost b.cost;
  checki (ctx ^ ": lower bound") a.lower_bound b.lower_bound;
  checkb (ctx ^ ": optimal") a.proven_optimal b.proven_optimal

let differential_names = [ "bench1"; "t1"; "test4" ]

let test_differential_gc () =
  (* small instances may not allocate enough between safe points to
     trip even a tiny threshold, so "collection actually happened" is
     asserted across the set; identical answers are asserted per run *)
  let collections, reclaimed =
    List.fold_left
      (fun (c, r) name ->
        let off = solve_fresh ~gc_threshold:0 ~chain:true name in
        let on_ = solve_fresh ~gc_threshold:128 ~chain:true name in
        same_answer name off on_;
        checki (name ^ ": gc-off never collects") 0 off.collections;
        checkb (name ^ ": gc bounds the peak") true (on_.peak <= off.peak);
        (c + on_.collections, r + on_.reclaimed))
      (0, 0) differential_names
  in
  checkb "forced gc collected" true (collections > 0);
  checkb "forced gc reclaimed" true (reclaimed > 0)

let test_differential_chain () =
  List.iter
    (fun name ->
      let with_chain = solve_fresh ~gc_threshold:0 ~chain:true name in
      let without = solve_fresh ~gc_threshold:0 ~chain:false name in
      same_answer name with_chain without;
      checki (name ^ ": chain off takes no fast path") 0 without.chain_hits)
    differential_names;
  (* the implicit encodings are chain-heavy: at least one instance must
     actually exercise the fast paths *)
  let hits =
    List.fold_left
      (fun acc name -> acc + (solve_fresh ~gc_threshold:0 ~chain:true name).chain_hits)
      0 differential_names
  in
  checkb "chain paths exercised" true (hits > 0)

let () =
  Alcotest.run "zdd_gc"
    [
      ( "collect",
        [
          Alcotest.test_case "reclaims garbage" `Quick test_collect_reclaims_garbage;
          Alcotest.test_case "canonicity preserved" `Quick
            test_canonicity_after_collect;
          Alcotest.test_case "peak monotone" `Quick test_peak_monotone;
        ] );
      ( "roots",
        [
          Alcotest.test_case "root survival" `Quick test_root_survival;
          Alcotest.test_case "cross-domain release" `Quick
            test_cross_domain_release;
        ] );
      ( "auto",
        [
          Alcotest.test_case "threshold" `Quick test_maybe_collect_threshold;
          Alcotest.test_case "disabled" `Quick test_gc_disabled;
        ] );
      ( "differential",
        [
          Alcotest.test_case "gc on/off" `Quick test_differential_gc;
          Alcotest.test_case "chain on/off" `Quick test_differential_chain;
        ] );
    ]
