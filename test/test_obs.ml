(* The trace-analysis toolkit (lib/obs): reader round-trips on collector
   output, strictness on truncated/corrupt traces, profile time
   attribution, convergence LB/UB extraction, the regression differ and
   the bench baseline gate.

   Synthetic traces are produced by a real Telemetry collector driven by
   a fake clock, so these tests cover the writer and the reader against
   each other — the schema under test is the schema the solver emits. *)

module Telemetry = Scg.Telemetry
module Json = Telemetry.Json

(* Scg's module initialiser registers the ZDD probes; the Telemetry
   alias above is seen through by the compiler, so reference a real
   value to force Scg to be linked (and its initialiser run) *)
let _force_scg_linkage = Scg.solve

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* a collector writing to an in-memory line buffer under a hand-cranked
   clock; [tick] advances it so span durations are exact *)
let make_collector () =
  let now = ref 0. in
  let lines = ref [] in
  let t =
    Telemetry.create ~clock:(fun () -> !now) ~trace:(fun l -> lines := l :: !lines) ()
  in
  let tick dt = now := !now +. dt in
  (t, tick, fun () -> List.rev !lines)

let parse_ok lines =
  match Obs.Trace.of_lines ~source:"test" lines with
  | Ok t -> t
  | Error e -> Alcotest.failf "trace rejected: %s" (Obs.Trace.error_to_string e)

let parse_err lines =
  match Obs.Trace.of_lines ~source:"test" lines with
  | Ok _ -> Alcotest.fail "malformed trace accepted"
  | Error e -> e

(* the shared golden trace: two indexed components under a descent, a
   subgradient with two runs (index reset at the second), an incumbent
   event and counters — the shapes every tool must handle *)
let golden () =
  let t, tick, lines = make_collector () in
  Telemetry.span t "implicit-reduce" (fun () -> tick 0.25);
  Telemetry.incr t "reduce.cols_essential";
  Telemetry.span t ~index:0 "component" (fun () ->
      Telemetry.span t "descent" (fun () ->
          Telemetry.span t "subgradient" (fun () ->
              (* first run: the certified full-core bound *)
              Telemetry.step t ~phase:"subgradient" ~component:0 ~step:1 ~value:3.5
                ~best:3.5;
              tick 0.5;
              Telemetry.step t ~phase:"subgradient" ~component:0 ~step:2 ~value:3.2
                ~best:4.0;
              (* second run (reduced submatrix): index resets *)
              Telemetry.step t ~phase:"subgradient" ~component:0 ~step:1 ~value:9.0
                ~best:9.0);
          Telemetry.event t "incumbent" [ ("component", Json.Int 0); ("cost", Json.Int 6) ];
          tick 0.25));
  Telemetry.span t ~index:1 "component" (fun () ->
      Telemetry.span t "subgradient" (fun () ->
          Telemetry.step t ~phase:"subgradient" ~component:1 ~step:1 ~value:2.0
            ~best:2.0;
          tick 1.0);
      Telemetry.event t "incumbent" [ ("component", Json.Int 1); ("cost", Json.Int 2) ]);
  tick 0.5;
  Telemetry.close t;
  lines ()

(* ------------------------------------------------------------------ *)
(* Reader                                                             *)
(* ------------------------------------------------------------------ *)

let test_reader_roundtrip () =
  let tr = parse_ok (golden ()) in
  checkf "elapsed" 2.5 tr.Obs.Trace.elapsed;
  checki "top-level spans" 3 (List.length tr.Obs.Trace.roots);
  (match tr.Obs.Trace.roots with
  | [ red; c0; c1 ] ->
    check Alcotest.string "first root" "implicit-reduce" red.Obs.Trace.name;
    checkf "reduce duration" 0.25 red.Obs.Trace.dur;
    check Alcotest.string "component 0" "component-0" c0.Obs.Trace.name;
    checkf "component-0 spans its children" 0.75 c0.Obs.Trace.dur;
    checki "component-0 depth" 0 c0.Obs.Trace.depth;
    (match c0.Obs.Trace.children with
    | [ d ] ->
      check Alcotest.string "child" "descent" d.Obs.Trace.name;
      checki "descent depth" 1 d.Obs.Trace.depth;
      (match d.Obs.Trace.children with
      | [ sg ] -> check Alcotest.string "grandchild" "subgradient" sg.Obs.Trace.name
      | l -> Alcotest.failf "descent has %d children" (List.length l))
    | l -> Alcotest.failf "component-0 has %d children" (List.length l));
    check Alcotest.string "component 1" "component-1" c1.Obs.Trace.name
  | _ -> Alcotest.fail "unexpected root shape");
  checki "steps" 4 (List.length tr.Obs.Trace.steps);
  checki "incumbent events" 2
    (List.length
       (List.filter (fun (e : Obs.Trace.event) -> e.Obs.Trace.ev = "incumbent")
          tr.Obs.Trace.events));
  checki "essential counter" 1
    (Option.value ~default:(-1)
       (List.assoc_opt "reduce.cols_essential" (Obs.Trace.counters tr)));
  (* every span record carries the built-in GC gauges *)
  let rec all_spans acc (s : Obs.Trace.span) =
    List.fold_left all_spans (s :: acc) s.Obs.Trace.children
  in
  List.iter
    (fun (s : Obs.Trace.span) ->
      checkb
        (Printf.sprintf "%s has gc.minor_words" s.Obs.Trace.name)
        true
        (List.mem_assoc "gc.minor_words" s.Obs.Trace.gauges))
    (List.fold_left all_spans [] tr.Obs.Trace.roots);
  checkb "summary has gauges" true (Obs.Trace.summary_gauges tr <> [])

let test_reader_rejects_truncation () =
  let lines = golden () in
  let n = List.length lines in
  (* drop the summary: missing-summary error *)
  let e = parse_err (List.filteri (fun i _ -> i < n - 1) lines) in
  checkb "mentions summary" true
    (Test_support.contains e.Obs.Trace.msg "summary");
  (* drop the last span_end too: unclosed spans *)
  let e = parse_err (List.filteri (fun i _ -> i < n - 2) lines) in
  checkb "mentions truncation" true
    (Test_support.contains e.Obs.Trace.msg "unclosed"
    || Test_support.contains e.Obs.Trace.msg "summary");
  (* empty trace *)
  let e = parse_err [] in
  checkb "empty rejected" true (Test_support.contains e.Obs.Trace.msg "empty")

let test_reader_rejects_corruption () =
  let lines = golden () in
  (* a garbage line in the middle, with its 1-based position reported *)
  let garbled =
    List.concat_map
      (fun (i, l) -> if i = 2 then [ "{not json" ] else [ l ])
      (List.mapi (fun i l -> (i, l)) lines)
  in
  let e = parse_err garbled in
  checki "error line" 3 e.Obs.Trace.line;
  (* a record after the summary (with a timestamp that keeps the stream
     monotone, so the after-summary check itself is what fires) *)
  let e =
    parse_err (lines @ [ {|{"t":999.0,"ev":"span_begin","name":"x","depth":0}|} ])
  in
  checkb "record after summary" true
    (Test_support.contains e.Obs.Trace.msg "summary");
  (* an unbalanced span_end *)
  let e =
    parse_err
      [
        {|{"t":0.0,"ev":"span_begin","name":"a","depth":0}|};
        {|{"t":1.0,"ev":"span_end","name":"b","depth":0,"dur":1.0}|};
      ]
  in
  checkb "span mismatch" true (Test_support.contains e.Obs.Trace.msg "span");
  (* non-monotone timestamps *)
  let e =
    parse_err
      [
        {|{"t":5.0,"ev":"span_begin","name":"a","depth":0}|};
        {|{"t":1.0,"ev":"span_end","name":"a","depth":0,"dur":1.0}|};
      ]
  in
  checkb "monotone check" true (Test_support.contains e.Obs.Trace.msg "monotone")

let test_base_name () =
  check Alcotest.string "indexed" "component" (Obs.Trace.base_name "component-3");
  check Alcotest.string "double" "espresso-pass" (Obs.Trace.base_name "espresso-pass-12");
  check Alcotest.string "plain" "descent" (Obs.Trace.base_name "descent");
  check Alcotest.string "trailing dash" "a-" (Obs.Trace.base_name "a-")

(* ------------------------------------------------------------------ *)
(* Profile                                                            *)
(* ------------------------------------------------------------------ *)

let find_node name (p : Obs.Profile.t) =
  match List.find_opt (fun (n : Obs.Profile.node) -> n.Obs.Profile.name = name) p.Obs.Profile.roots with
  | Some n -> n
  | None -> Alcotest.failf "no root node %S" name

let test_profile_merge_and_self () =
  let p = Obs.Profile.of_trace (parse_ok (golden ())) in
  checkf "elapsed" 2.5 p.Obs.Profile.elapsed;
  (* both components pool under one node *)
  let c = find_node "component" p in
  checki "merged count" 2 c.Obs.Profile.count;
  checkf "merged total" 1.75 c.Obs.Profile.total;
  (* component-0's time is all in descent (0.75), component-1's
     subgradient child accounts for 1.0: self = 1.75 - 0.75 - 1.0 = 0 *)
  checkf "component self" 0. c.Obs.Profile.self;
  let red = find_node "implicit-reduce" p in
  checkf "leaf self = total" red.Obs.Profile.total red.Obs.Profile.self;
  (* without merging the components stay separate *)
  let p' = Obs.Profile.of_trace ~merge:false (parse_ok (golden ())) in
  checki "unmerged roots" 3 (List.length p'.Obs.Profile.roots);
  checki "component-0 count" 1 (find_node "component-0" p').Obs.Profile.count

let test_profile_folded () =
  let p = Obs.Profile.of_trace (parse_ok (golden ())) in
  let folded = Obs.Profile.folded p in
  (* exact self times in microseconds at each stack position *)
  checki "reduce stack" 250_000 (List.assoc "implicit-reduce" folded);
  checki "descent self" 250_000 (List.assoc "component;descent" folded);
  checki "subgradient leaf (pooled)" 1_500_000
    (List.assoc "component;subgradient" folded
    + List.assoc "component;descent;subgradient" folded);
  (* zero-self stacks are dropped *)
  checkb "no component row" true (not (List.mem_assoc "component" folded))

let test_profile_flat_no_double_count () =
  let p = Obs.Profile.of_trace (parse_ok (golden ())) in
  let flat = Obs.Profile.flat p in
  let total_self = List.fold_left (fun a (_, s, _) -> a +. s) 0. flat in
  checkb "self sums within elapsed" true
    (total_self <= p.Obs.Profile.elapsed +. 1e-9);
  (* subgradient appears once though it sits at two tree positions *)
  checki "one subgradient row" 1
    (List.length (List.filter (fun (n, _, _) -> n = "subgradient") flat));
  (match List.find_opt (fun (n, _, _) -> n = "subgradient") flat with
  | Some (_, self, count) ->
    checkf "pooled self" 1.5 self;
    checki "pooled count" 2 count
  | None -> Alcotest.fail "subgradient missing from flat view")

(* ------------------------------------------------------------------ *)
(* Conv                                                               *)
(* ------------------------------------------------------------------ *)

let test_conv_bounds () =
  let c = Obs.Conv.of_trace (parse_ok (golden ())) in
  checki "series" 2 (List.length c.Obs.Conv.series);
  (* UB: cheapest incumbent *)
  checki "final UB" 2 (Option.get c.Obs.Conv.final_ub);
  (* LB: component 0's first run peaks at 4.0 (the 9.0 of the reduced
     second run must not leak in), component 1 contributes 2.0 *)
  checkf "final LB" 6.0 (Option.get c.Obs.Conv.final_lb);
  let s0 = List.hd c.Obs.Conv.series in
  checki "pooled steps" 3 (List.length s0.Obs.Conv.steps);
  checkf "final best is the last run's" 9.0 s0.Obs.Conv.final_best

let test_conv_csv () =
  let c = Obs.Conv.of_trace (parse_ok (golden ())) in
  let csv = Fmt.str "%a" Obs.Conv.pp_csv c in
  let lines = String.split_on_char '\n' (String.trim csv) in
  checki "header + 4 steps" 5 (List.length lines);
  check Alcotest.string "header" "phase,component,step,t,value,best" (List.hd lines)

(* ------------------------------------------------------------------ *)
(* Diff                                                               *)
(* ------------------------------------------------------------------ *)

(* the golden trace with every duration multiplied by [f] *)
let golden_scaled f =
  let t, tick, lines = make_collector () in
  Telemetry.span t "implicit-reduce" (fun () -> tick (0.25 *. f));
  Telemetry.span t ~index:0 "component" (fun () ->
      Telemetry.span t "descent" (fun () ->
          Telemetry.span t "subgradient" (fun () -> tick (0.5 *. f));
          tick (0.25 *. f)));
  Telemetry.close t;
  lines ()

let test_diff_identity_and_regression () =
  let a = parse_ok (golden_scaled 1.0) in
  let same = Obs.Diff.compare_traces a (parse_ok (golden_scaled 1.0)) in
  checkb "identical traces" false (Obs.Diff.has_regression same);
  let d = Obs.Diff.compare_traces a (parse_ok (golden_scaled 3.0)) in
  checkb "3x slower regresses" true (Obs.Diff.has_regression d);
  checkb "elapsed regressed" true d.Obs.Diff.elapsed_regression;
  (* every phase got slower by 3x, well past threshold and floor *)
  checki "all phases flagged" 3 (List.length d.Obs.Diff.regressions);
  (* B faster than A is never a regression *)
  let faster = Obs.Diff.compare_traces a (parse_ok (golden_scaled 0.5)) in
  checkb "speedup accepted" false (Obs.Diff.has_regression faster)

let test_diff_absolute_floor () =
  let a = parse_ok (golden_scaled 0.0001) in
  let b = parse_ok (golden_scaled 0.0003) in
  (* 3x slower but only fractions of a millisecond: under the floor *)
  checkb "microsecond deltas ignored" false
    (Obs.Diff.has_regression (Obs.Diff.compare_traces a b));
  (* with the floor lowered the same pair trips *)
  checkb "floor 0 flags it" true
    (Obs.Diff.has_regression (Obs.Diff.compare_traces ~min_seconds:0. a b))

let test_diff_counters () =
  let with_counter n =
    let t, tick, lines = make_collector () in
    Telemetry.span t "descent" (fun () -> tick 0.1);
    Telemetry.add t "reduce.cols_essential" n;
    Telemetry.close t;
    parse_ok (lines ())
  in
  let d = Obs.Diff.compare_traces (with_counter 3) (with_counter 5) in
  (match d.Obs.Diff.counter_rows with
  | [ (name, 3, 5) ] -> check Alcotest.string "counter" "reduce.cols_essential" name
  | rows -> Alcotest.failf "unexpected counter rows (%d)" (List.length rows));
  checkb "counter drift alone is no regression" false (Obs.Diff.has_regression d)

(* ------------------------------------------------------------------ *)
(* Gauges: monotonicity invariants on real collector output           *)
(* ------------------------------------------------------------------ *)

let test_gauge_monotonicity () =
  (* a real clock and real work: allocation happens inside the spans *)
  let lines = ref [] in
  let t = Telemetry.create ~trace:(fun l -> lines := l :: !lines) () in
  let sink = ref [] in
  for i = 1 to 3 do
    Telemetry.span t ~index:i "work" (fun () ->
        sink := List.init 10_000 (fun j -> float_of_int (i * j)) :: !sink)
  done;
  Telemetry.close t;
  let tr = parse_ok (List.rev !lines) in
  List.iter
    (fun (s : Obs.Trace.span) ->
      let g = List.assoc "gc.minor_words" s.Obs.Trace.gauges in
      checkb
        (Printf.sprintf "%s allocated" s.Obs.Trace.name)
        true
        (g.Obs.Trace.delta > 0.))
    tr.Obs.Trace.roots;
  (* summary gauges: final never exceeds peak; monotone meters peak at
     their final value *)
  List.iter
    (fun (name, v, peak) ->
      checkb (name ^ " v <= peak") true (v <= peak +. 1e-9))
    (Obs.Trace.summary_gauges tr);
  (* the ZDD probes are registered (Scg is linked in): occupancy can
     never exceed its peak *)
  (match
     ( List.find_opt (fun (n, _, _) -> n = "zdd.nodes") (Obs.Trace.summary_gauges tr),
       List.find_opt (fun (n, _, _) -> n = "zdd.peak_nodes") (Obs.Trace.summary_gauges tr) )
   with
  | Some (_, nodes, _), Some (_, peak, _) ->
    checkb "zdd.nodes <= zdd.peak_nodes" true (nodes <= peak)
  | _ -> Alcotest.fail "zdd gauges missing from the summary");
  (* the manager-lifecycle probes ride along; collections, reclaimed
     and chain hits are monotone meters, so their final value is their
     peak (zdd.gc.live is a true gauge and only bounded by its peak) *)
  List.iter
    (fun (gauge, meter) ->
      match
        List.find_opt (fun (n, _, _) -> n = gauge) (Obs.Trace.summary_gauges tr)
      with
      | Some (_, v, peak) ->
        checkb (gauge ^ " non-negative") true (v >= 0.);
        if meter then checkb (gauge ^ " meter peaks at final") true (v = peak)
      | None -> Alcotest.failf "%s missing from the summary" gauge)
    [
      ("zdd.gc.collections", true);
      ("zdd.gc.reclaimed", true);
      ("zdd.gc.live", false);
      ("zdd.chain_hits", true);
    ]

(* ------------------------------------------------------------------ *)
(* Gate                                                               *)
(* ------------------------------------------------------------------ *)

let reduce_json ?(identical = true) ?(tolerances = []) speedups =
  Json.Obj
    [
      ("mode", Json.String "reduce");
      ("identical_results", Json.Bool identical);
      ( "aggregate_total_speedup",
        Json.Float
          (List.fold_left (fun a (_, s) -> a +. s) 0. speedups
          /. float_of_int (List.length speedups)) );
      ( "instances",
        Json.List
          (List.map
             (fun (name, s) ->
               Json.Obj
                 (("name", Json.String name)
                 :: ("identical", Json.Bool identical)
                 :: ("total", Json.Obj [ ("speedup", Json.Float s) ])
                 ::
                 (match List.assoc_opt name tolerances with
                 | Some t -> [ ("tolerance", Json.Float t) ]
                 | None -> [])))
             speedups) );
    ]

let test_gate_reduce () =
  let baseline = reduce_json [ ("a", 8.0); ("b", 4.0) ] in
  (* same speedups: pass *)
  let v = Obs.Gate.check ~baseline ~fresh:(reduce_json [ ("a", 8.0); ("b", 4.0) ]) () in
  checkb "identical passes" true v.Obs.Gate.pass;
  (* a mild slowdown within the default tolerance: pass *)
  let v = Obs.Gate.check ~baseline ~fresh:(reduce_json [ ("a", 6.0); ("b", 3.5) ]) () in
  checkb "mild slowdown passes" true v.Obs.Gate.pass;
  (* one instance collapses: fail, and the message names it *)
  let v = Obs.Gate.check ~baseline ~fresh:(reduce_json [ ("a", 2.0); ("b", 4.0) ]) () in
  checkb "collapse fails" false v.Obs.Gate.pass;
  checkb "failure names the instance" true
    (List.exists (fun l -> Test_support.contains l "FAIL a") v.Obs.Gate.lines);
  (* engines disagreeing is an unconditional failure *)
  let v =
    Obs.Gate.check ~baseline
      ~fresh:(reduce_json ~identical:false [ ("a", 8.0); ("b", 4.0) ])
      ()
  in
  checkb "mismatch fails" false v.Obs.Gate.pass;
  (* a missing instance is a failure, not a silent skip *)
  let v = Obs.Gate.check ~baseline ~fresh:(reduce_json [ ("a", 8.0) ]) () in
  checkb "missing instance fails" false v.Obs.Gate.pass

let test_gate_per_instance_tolerance () =
  (* the per-instance knob loosens exactly its row (b dominates the
     aggregate so only the instance check is in play) *)
  let baseline = reduce_json ~tolerances:[ ("a", 0.9) ] [ ("a", 10.0); ("b", 40.0) ] in
  let fresh = reduce_json [ ("a", 1.5); ("b", 40.0) ] in
  let v = Obs.Gate.check ~tolerance:0.4 ~baseline ~fresh () in
  checkb "instance tolerance honoured" true v.Obs.Gate.pass;
  (* the same drop without the override fails *)
  let strict = reduce_json [ ("a", 10.0); ("b", 40.0) ] in
  let v = Obs.Gate.check ~tolerance:0.4 ~baseline:strict ~fresh () in
  checkb "without override fails" false v.Obs.Gate.pass

let table_json rows =
  Json.Obj
    [
      ("table", Json.String "table1");
      ( "instances",
        Json.List
          (List.map
             (fun (name, cost, lb, opt, secs) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("cost", Json.Int cost);
                   ("lower_bound", Json.Int lb);
                   ("proven_optimal", Json.Bool opt);
                   ("seconds", Json.Float secs);
                 ])
             rows) );
    ]

let test_gate_table () =
  let baseline = table_json [ ("t1", 11, 10, false, 0.10) ] in
  (* unchanged quality, similar time: pass *)
  let v =
    Obs.Gate.check ~baseline ~fresh:(table_json [ ("t1", 11, 10, false, 0.11) ]) ()
  in
  checkb "steady run passes" true v.Obs.Gate.pass;
  (* quality drift is a hard failure even with time to spare *)
  let v =
    Obs.Gate.check ~baseline ~fresh:(table_json [ ("t1", 12, 10, false, 0.01) ]) ()
  in
  checkb "cost drift fails" false v.Obs.Gate.pass;
  let v =
    Obs.Gate.check ~baseline ~fresh:(table_json [ ("t1", 11, 10, true, 0.10) ]) ()
  in
  checkb "optimality drift fails" false v.Obs.Gate.pass;
  (* gross slowdown beyond tolerance + slack fails *)
  let v =
    Obs.Gate.check ~min_seconds:0.01 ~baseline
      ~fresh:(table_json [ ("t1", 11, 10, false, 1.0) ])
      ()
  in
  checkb "slowdown fails" false v.Obs.Gate.pass

let test_gate_unknown_shape () =
  let v =
    Obs.Gate.check ~baseline:(Json.Obj [ ("what", Json.Int 1) ])
      ~fresh:(Json.Obj []) ()
  in
  checkb "unknown baseline fails" false v.Obs.Gate.pass

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_reader_roundtrip;
          Alcotest.test_case "truncation" `Quick test_reader_rejects_truncation;
          Alcotest.test_case "corruption" `Quick test_reader_rejects_corruption;
          Alcotest.test_case "base_name" `Quick test_base_name;
        ] );
      ( "profile",
        [
          Alcotest.test_case "merge and self" `Quick test_profile_merge_and_self;
          Alcotest.test_case "folded" `Quick test_profile_folded;
          Alcotest.test_case "flat" `Quick test_profile_flat_no_double_count;
        ] );
      ( "conv",
        [
          Alcotest.test_case "bounds" `Quick test_conv_bounds;
          Alcotest.test_case "csv" `Quick test_conv_csv;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identity and regression" `Quick
            test_diff_identity_and_regression;
          Alcotest.test_case "absolute floor" `Quick test_diff_absolute_floor;
          Alcotest.test_case "counters" `Quick test_diff_counters;
        ] );
      ( "gauges",
        [ Alcotest.test_case "monotonicity" `Quick test_gauge_monotonicity ] );
      ( "gate",
        [
          Alcotest.test_case "reduce" `Quick test_gate_reduce;
          Alcotest.test_case "per-instance tolerance" `Quick
            test_gate_per_instance_tolerance;
          Alcotest.test_case "table" `Quick test_gate_table;
          Alcotest.test_case "unknown shape" `Quick test_gate_unknown_shape;
        ] );
    ]
