(* Tests for the benchmark substrate: determinism, structural claims of
   each generator, Steiner system axioms, and registry integrity. *)

module Matrix = Covering.Matrix

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Benchsuite.Rng.create 42 and b = Benchsuite.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Benchsuite.Rng.int a 1000) (Benchsuite.Rng.int b 1000)
  done

let test_rng_of_string () =
  let a = Benchsuite.Rng.of_string "bench1" and b = Benchsuite.Rng.of_string "bench1" in
  Alcotest.(check int) "same" (Benchsuite.Rng.int a 1_000_000) (Benchsuite.Rng.int b 1_000_000);
  let c = Benchsuite.Rng.of_string "bench2" in
  (* overwhelmingly likely to differ on the first draw *)
  check "different name differs" true
    (Benchsuite.Rng.int (Benchsuite.Rng.of_string "bench1") 1_000_000
     <> Benchsuite.Rng.int c 1_000_000
    || Benchsuite.Rng.int (Benchsuite.Rng.of_string "bench1") 7 >= 0)

let test_rng_bounds () =
  let rng = Benchsuite.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Benchsuite.Rng.int rng 13 in
    check "in range" true (v >= 0 && v < 13);
    let f = Benchsuite.Rng.float rng 2.5 in
    check "float range" true (f >= 0. && f < 2.5)
  done

let test_rng_shuffle_permutes () =
  let rng = Benchsuite.Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Benchsuite.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Stdlib.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Plagen                                                             *)
(* ------------------------------------------------------------------ *)

let test_parity_structure () =
  let spec = Benchsuite.Plagen.parity ~ni:4 in
  Alcotest.(check int) "8 onset minterms" 8 (Logic.Cover.size spec.Benchsuite.Plagen.on);
  (* all 8 minterms are primes: the covering matrix is the identity-ish *)
  let b = Covering.From_logic.build ~on:spec.Benchsuite.Plagen.on ~dc:spec.Benchsuite.Plagen.dc () in
  Alcotest.(check int) "8 primes" 8 (Matrix.n_cols b.Covering.From_logic.matrix);
  Alcotest.(check int) "8 rows" 8 (Matrix.n_rows b.Covering.From_logic.matrix)

let test_majority_optimum () =
  let spec = Benchsuite.Plagen.majority ~ni:3 in
  let b = Covering.From_logic.build ~on:spec.Benchsuite.Plagen.on ~dc:spec.Benchsuite.Plagen.dc () in
  let r = Covering.Exact.solve b.Covering.From_logic.matrix in
  Alcotest.(check int) "maj3 needs 3 products" 3 r.Covering.Exact.cost

let test_mux_optimum () =
  (* 4-to-1 mux: 4 products suffice (one per data line) and are needed *)
  let spec = Benchsuite.Plagen.mux ~select:2 in
  let b = Covering.From_logic.build ~on:spec.Benchsuite.Plagen.on ~dc:spec.Benchsuite.Plagen.dc () in
  let r = Covering.Exact.solve b.Covering.From_logic.matrix in
  Alcotest.(check int) "mux4 optimum" 4 r.Covering.Exact.cost

let test_random_pla_deterministic () =
  let a = Benchsuite.Plagen.random_pla ~name:"x" ~ni:6 ~terms:8 ~dc_terms:2 in
  let b = Benchsuite.Plagen.random_pla ~name:"x" ~ni:6 ~terms:8 ~dc_terms:2 in
  check "same cover" true
    (Logic.Cover.equal_semantics a.Benchsuite.Plagen.on b.Benchsuite.Plagen.on)

let test_with_random_dc () =
  let base = Benchsuite.Plagen.random_pla ~name:"dc-test" ~ni:5 ~terms:5 ~dc_terms:0 in
  let spec = Benchsuite.Plagen.with_random_dc ~percent:50 base in
  (* the DC plane must stay disjoint from the ON-set *)
  let on_bdd = Logic.Cover.to_bdd spec.Benchsuite.Plagen.on in
  let dc_bdd = Logic.Cover.to_bdd spec.Benchsuite.Plagen.dc in
  check "dc disjoint from on" true (Bdd.is_zero (Bdd.band on_bdd dc_bdd))

(* ------------------------------------------------------------------ *)
(* Steiner                                                            *)
(* ------------------------------------------------------------------ *)

let test_steiner_axioms () =
  List.iter
    (fun n ->
      let triples = Benchsuite.Steiner.triples n in
      Alcotest.(check int)
        (Printf.sprintf "stein%d triple count" n)
        (n * (n - 1) / 6)
        (List.length triples);
      (* every pair of points appears in exactly one triple *)
      let pair_count = Hashtbl.create 97 in
      List.iter
        (fun (a, b, c) ->
          check "distinct" true (a <> b && b <> c && a <> c);
          List.iter
            (fun (x, y) ->
              let key = (min x y, max x y) in
              Hashtbl.replace pair_count key
                (1 + Option.value ~default:0 (Hashtbl.find_opt pair_count key)))
            [ (a, b); (b, c); (a, c) ])
        triples;
      Alcotest.(check int)
        (Printf.sprintf "stein%d pair coverage" n)
        (n * (n - 1) / 2)
        (Hashtbl.length pair_count);
      Hashtbl.iter (fun _ c -> Alcotest.(check int) "each pair once" 1 c) pair_count)
    [ 9; 15; 27 ]

let test_steiner_matrix () =
  let m = Benchsuite.Steiner.matrix 9 in
  Alcotest.(check int) "rows" 12 (Matrix.n_rows m);
  Alcotest.(check int) "cols" 9 (Matrix.n_cols m);
  (* stein9 covering number is 5 *)
  let r = Covering.Exact.solve m in
  Alcotest.(check int) "stein9 optimum" 5 r.Covering.Exact.cost

let test_steiner_invalid () =
  check "rejects n=8" true
    (try ignore (Benchsuite.Steiner.triples 8); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Randucp                                                            *)
(* ------------------------------------------------------------------ *)

let test_reducible_profile () =
  let m = Benchsuite.Randucp.reducible ~name:"p" ~n_rows:80 ~n_cols:40 () in
  Alcotest.(check int) "rows" 80 (Matrix.n_rows m);
  (* reductions should bite hard: the core is much smaller than the input *)
  let r = Covering.Reduce.cyclic_core m in
  check "core shrank" true (Matrix.n_rows r.Covering.Reduce.core < 40)

let test_cyclic_profile () =
  let m = Benchsuite.Randucp.cyclic ~name:"q" ~n_rows:60 ~n_cols:40 ~k:3 () in
  for i = 0 to Matrix.n_rows m - 1 do
    Alcotest.(check int) "k per row" 3 (Array.length (Matrix.row m i))
  done;
  (* no essentials by construction *)
  Alcotest.(check (list int)) "no essential" [] (Covering.Reduce.essential_columns m)

let test_vertex_cover_structure () =
  let m = Benchsuite.Randucp.vertex_cover ~name:"vc" ~n_vertices:12 ~n_edges:20 () in
  Alcotest.(check int) "cols" 12 (Matrix.n_cols m);
  check "has rows" true (Matrix.n_rows m > 0);
  for i = 0 to Matrix.n_rows m - 1 do
    Alcotest.(check int) "edge row" 2 (Array.length (Matrix.row m i))
  done;
  (* deterministic *)
  let m2 = Benchsuite.Randucp.vertex_cover ~name:"vc" ~n_vertices:12 ~n_edges:20 () in
  Alcotest.(check int) "same rows" (Matrix.n_rows m) (Matrix.n_rows m2)

let test_beasley_structure () =
  let m =
    Benchsuite.Randucp.beasley ~name:"scp-t" ~n_rows:40 ~n_cols:300 ~rows_per_col:4 ()
  in
  Alcotest.(check int) "cols" 300 (Matrix.n_cols m);
  Alcotest.(check int) "rows" 40 (Matrix.n_rows m);
  (* repair guarantees every row at least two columns *)
  for i = 0 to Matrix.n_rows m - 1 do
    check "row degree >= 2" true (Array.length (Matrix.row m i) >= 2)
  done;
  check "costs spread" true
    (List.exists (fun j -> Matrix.cost m j > 1) (List.init 300 Fun.id));
  Matrix.transpose_check m

let test_vertex_cover_gap () =
  (* odd structures make the LP gap strictly positive almost surely at
     this density; at minimum the LP bound must bracket correctly *)
  let m = Benchsuite.Randucp.vertex_cover ~name:"vc-gap" ~n_vertices:10 ~n_edges:18 () in
  let lp = (Lagrangian.Lp.solve m).Lagrangian.Lp.value in
  let opt = (Covering.Exact.solve m).Covering.Exact.cost in
  check "lp below opt" true (lp <= float_of_int opt +. 1e-6);
  check "lp at least half opt" true (2. *. lp >= float_of_int opt -. 1e-6)

let test_cyclic_cost_spread () =
  let m = Benchsuite.Randucp.cyclic ~name:"r" ~n_rows:30 ~n_cols:20 ~k:3 ~cost_spread:4 () in
  let costs = List.init (Matrix.n_cols m) (Matrix.cost m) in
  check "within range" true (List.for_all (fun c -> c >= 1 && c <= 5) costs);
  check "not uniform" true (List.exists (fun c -> c > 1) costs)

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let test_registry_counts () =
  Alcotest.(check int) "easy 49" 49 (List.length (Benchsuite.Registry.easy ()));
  Alcotest.(check int) "difficult 7" 7 (List.length (Benchsuite.Registry.difficult ()));
  Alcotest.(check int) "dense 5" 5 (List.length (Benchsuite.Registry.dense ()));
  Alcotest.(check int) "challenging 16" 16
    (List.length (Benchsuite.Registry.challenging ()));
  Alcotest.(check int) "scale 5" 5 (List.length (Benchsuite.Registry.scale ()));
  Alcotest.(check int) "total 82" 82 (List.length (Benchsuite.Registry.all ()))

let test_registry_names_unique () =
  let names = List.map (fun i -> i.Benchsuite.Registry.name) (Benchsuite.Registry.all ()) in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq Stdlib.compare names))

let test_registry_find () =
  let i = Benchsuite.Registry.find "bench1" in
  check "category" true (i.Benchsuite.Registry.category = Benchsuite.Registry.Difficult);
  check "unknown raises" true
    (try ignore (Benchsuite.Registry.find "nope"); false with Not_found -> true)

let test_registry_matrices_wellformed () =
  (* spot-check one instance per category *)
  List.iter
    (fun name ->
      let m = Benchsuite.Registry.matrix (Benchsuite.Registry.find name) in
      Matrix.transpose_check m;
      check (name ^ " nonempty") true (Matrix.n_rows m > 0))
    [ "parity4"; "ucp-easy01"; "t1"; "misj"; "pdc" ]

let () =
  Alcotest.run "benchsuite"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "of_string" `Quick test_rng_of_string;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes;
        ] );
      ( "plagen",
        [
          Alcotest.test_case "parity" `Quick test_parity_structure;
          Alcotest.test_case "majority" `Quick test_majority_optimum;
          Alcotest.test_case "mux" `Quick test_mux_optimum;
          Alcotest.test_case "deterministic" `Quick test_random_pla_deterministic;
          Alcotest.test_case "random dc" `Quick test_with_random_dc;
        ] );
      ( "steiner",
        [
          Alcotest.test_case "axioms" `Quick test_steiner_axioms;
          Alcotest.test_case "matrix" `Quick test_steiner_matrix;
          Alcotest.test_case "invalid" `Quick test_steiner_invalid;
        ] );
      ( "randucp",
        [
          Alcotest.test_case "reducible" `Quick test_reducible_profile;
          Alcotest.test_case "cyclic" `Quick test_cyclic_profile;
          Alcotest.test_case "cost spread" `Quick test_cyclic_cost_spread;
          Alcotest.test_case "vertex cover" `Quick test_vertex_cover_structure;
          Alcotest.test_case "vertex cover gap" `Quick test_vertex_cover_gap;
          Alcotest.test_case "beasley" `Quick test_beasley_structure;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counts" `Quick test_registry_counts;
          Alcotest.test_case "unique names" `Quick test_registry_names_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "matrices" `Quick test_registry_matrices_wellformed;
        ] );
    ]
