(* The resource governor and its anytime guarantees.

   Unit tests pin the tick accounting (budgets, fault injection, the
   deadline clock); the integration sweeps inject deterministic faults at
   every checkpoint site of the solver stack and assert the contract: the
   solver never raises, always returns a feasible cover, always reports a
   valid lower bound, and records an accurate status.  A differential
   test checks that an active-but-unlimited governor changes nothing. *)

module Matrix = Covering.Matrix
module Budget = Scg.Budget

(* ------------------------------------------------------------------ *)
(* tick accounting                                                    *)
(* ------------------------------------------------------------------ *)

let test_none_inert () =
  let b = Budget.none in
  for _ = 1 to 1000 do
    List.iter
      (fun site -> Alcotest.(check bool) "never stops" false (Budget.tick b site))
      Budget.all_sites
  done;
  Alcotest.(check int) "no ticks recorded" 0 (Budget.ticks b);
  Alcotest.(check bool) "inactive" false (Budget.is_active b);
  Alcotest.(check bool) "no trip" true (Budget.tripped b = None)

let test_unlimited_active () =
  let b = Budget.create () in
  Alcotest.(check bool) "active" true (Budget.is_active b);
  for _ = 1 to 1000 do
    List.iter
      (fun site -> Alcotest.(check bool) "never trips" false (Budget.tick b site))
      Budget.all_sites
  done;
  Alcotest.(check int) "counts ticks"
    (1000 * List.length Budget.all_sites)
    (Budget.ticks b)

let test_node_budget () =
  let b = Budget.create ~nodes:3 () in
  (* step-like sites never count against the node budget *)
  for _ = 1 to 10 do
    ignore (Budget.tick b Budget.Subgradient)
  done;
  Alcotest.(check bool) "1" false (Budget.tick b Budget.Exact_bb);
  Alcotest.(check bool) "2" false (Budget.tick b Budget.Implicit_reduce);
  Alcotest.(check bool) "3" false (Budget.tick b Budget.Explicit_reduce);
  Alcotest.(check bool) "4 trips" true (Budget.tick b Budget.Exact_bb);
  (match Budget.tripped b with
  | Some { Budget.site = Budget.Exact_bb; reason = Budget.Node_budget 3; _ } -> ()
  | t ->
    Alcotest.failf "wrong trip: %s"
      (match t with Some t -> Budget.describe t | None -> "none"));
  (* sticky: every later tick at any site stops immediately *)
  List.iter
    (fun site -> Alcotest.(check bool) "sticky" true (Budget.tick b site))
    Budget.all_sites

let test_step_budget () =
  let b = Budget.create ~steps:2 () in
  for _ = 1 to 10 do
    ignore (Budget.tick b Budget.Exact_bb)
  done;
  Alcotest.(check bool) "1" false (Budget.tick b Budget.Subgradient);
  Alcotest.(check bool) "2" false (Budget.tick b Budget.Dual_ascent);
  Alcotest.(check bool) "3 trips" true (Budget.tick b Budget.Subgradient);
  match Budget.tripped b with
  | Some { Budget.reason = Budget.Step_budget 2; _ } -> ()
  | t ->
    Alcotest.failf "wrong trip: %s"
      (match t with Some t -> Budget.describe t | None -> "none")

let test_fault_site_filter () =
  let b = Budget.create ~fault_after:2 ~fault_site:Budget.Dual_ascent () in
  for _ = 1 to 50 do
    Alcotest.(check bool) "other sites" false (Budget.tick b Budget.Subgradient)
  done;
  Alcotest.(check bool) "first" false (Budget.tick b Budget.Dual_ascent);
  Alcotest.(check bool) "second trips" true (Budget.tick b Budget.Dual_ascent);
  match Budget.tripped b with
  | Some { Budget.site = Budget.Dual_ascent; reason = Budget.Fault_injected 2; tick } ->
    Alcotest.(check int) "global tick recorded" 52 tick
  | t ->
    Alcotest.failf "wrong trip: %s"
      (match t with Some t -> Budget.describe t | None -> "none")

let test_deadline_fake_clock () =
  let clock = ref 0.0 in
  let b = Budget.create ~timeout:10.0 ~now:(fun () -> !clock) ~check_every:4 () in
  for _ = 1 to 16 do
    Alcotest.(check bool) "before deadline" false (Budget.tick b Budget.Exact_bb)
  done;
  clock := 11.0;
  (* ticks 17..19 are off-cadence, the clock is only read on the 20th *)
  Alcotest.(check bool) "17" false (Budget.tick b Budget.Exact_bb);
  Alcotest.(check bool) "18" false (Budget.tick b Budget.Exact_bb);
  Alcotest.(check bool) "19" false (Budget.tick b Budget.Exact_bb);
  Alcotest.(check bool) "20 trips" true (Budget.tick b Budget.Exact_bb);
  match Budget.tripped b with
  | Some { Budget.reason = Budget.Deadline 10.0; tick = 20; _ } -> ()
  | t ->
    Alcotest.failf "wrong trip: %s"
      (match t with Some t -> Budget.describe t | None -> "none")

let test_interrupt () =
  (* interrupt is the cooperative kill used by the signal traps and the
     daemon drain: the very next checkpoint trips with Interrupted *)
  let b = Budget.create () in
  Alcotest.(check bool) "before" false (Budget.tick b Budget.Subgradient);
  Budget.interrupt b;
  Alcotest.(check bool) "flag set" true (Budget.interrupted b);
  Alcotest.(check bool) "trip pending" true (Budget.tripped b = None);
  Alcotest.(check bool) "next tick trips" true (Budget.tick b Budget.Exact_bb);
  (match Budget.tripped b with
  | Some { Budget.reason = Budget.Interrupted; site = Budget.Exact_bb; _ } -> ()
  | t ->
    Alcotest.failf "wrong trip: %s"
      (match t with Some t -> Budget.describe t | None -> "none"));
  (* sticky, like any other trip *)
  Alcotest.(check bool) "sticky" true (Budget.tick b Budget.Subgradient)

let test_interrupt_propagates_to_forks () =
  (* the drain sweep interrupts the parent; children forked before AND
     after must both see it — they share the parent's limits record *)
  let parent = Budget.create () in
  let early = Budget.fork parent in
  Budget.interrupt parent;
  let late = Budget.fork parent in
  List.iter
    (fun (name, b) ->
      Alcotest.(check bool) (name ^ " interrupted") true (Budget.interrupted b);
      Alcotest.(check bool) (name ^ " trips") true (Budget.tick b Budget.Subgradient))
    [ ("early fork", early); ("late fork", late); ("parent", parent) ];
  (* interrupting a child reaches the parent too: same shared flag *)
  let p2 = Budget.create () in
  let c2 = Budget.fork p2 in
  Budget.interrupt c2;
  Alcotest.(check bool) "parent sees child's interrupt" true (Budget.interrupted p2)

let test_interrupt_none_noop () =
  Budget.interrupt Budget.none;
  Alcotest.(check bool) "none stays inert" false (Budget.interrupted Budget.none);
  Alcotest.(check bool) "no trip" false (Budget.tick Budget.none Budget.Subgradient)

let test_fault_raise () =
  (* fault_raise simulates a crash escaping the solver: the checkpoint
     raises Injected_fault at the exact configured tick instead of
     winding down cooperatively (this is what the daemon's crash
     isolation is tested against) *)
  let b = Budget.create ~fault_after:3 ~fault_site:Budget.Subgradient ~fault_raise:true () in
  Alcotest.(check bool) "1" false (Budget.tick b Budget.Subgradient);
  Alcotest.(check bool) "2" false (Budget.tick b Budget.Subgradient);
  (match Budget.tick b Budget.Subgradient with
  | _ -> Alcotest.fail "third tick should raise"
  | exception Budget.Injected_fault { site = Budget.Subgradient; tick = 3 } -> ()
  | exception Budget.Injected_fault { site; tick } ->
    Alcotest.failf "wrong fault payload: %s tick %d" (Budget.string_of_site site) tick)

let test_site_names_roundtrip () =
  List.iter
    (fun s ->
      match Budget.site_of_string (Budget.string_of_site s) with
      | Some s' when s' = s -> ()
      | _ -> Alcotest.failf "site %s does not round-trip" (Budget.string_of_site s))
    Budget.all_sites;
  Alcotest.(check bool) "junk name" true (Budget.site_of_string "frobnicate" = None)

(* ------------------------------------------------------------------ *)
(* fault-injection sweeps through Scg.solve                           *)
(* ------------------------------------------------------------------ *)

let quick_config =
  {
    Scg.Config.default with
    Scg.Config.num_iter = 2;
    subgradient =
      { Lagrangian.Subgradient.default_config with Lagrangian.Subgradient.max_steps = 60 };
  }

let difficult_matrices =
  lazy
    (List.map
       (fun i -> (i.Benchsuite.Registry.name, Benchsuite.Registry.matrix i))
       (Benchsuite.Registry.difficult ()))

let check_anytime_contract ~name ~site ~fault_after m (r : Scg.result) budget =
  let ctx = Printf.sprintf "%s/%s/after-%d" name (Budget.string_of_site site) fault_after in
  Alcotest.(check bool) (ctx ^ ": cover feasible") true (Matrix.covers m r.Scg.solution);
  Alcotest.(check int) (ctx ^ ": cost consistent") (Matrix.cost_of m r.Scg.solution)
    r.Scg.cost;
  Alcotest.(check bool)
    (ctx ^ ": lower bound valid")
    true
    (r.Scg.lower_bound >= 0 && r.Scg.lower_bound <= r.Scg.cost);
  match Budget.tripped budget with
  | Some trip ->
    Alcotest.(check bool)
      (ctx ^ ": trip at the injected site")
      true (trip.Budget.site = site);
    (match r.Scg.status with
    | Scg.Feasible_budget_exhausted t ->
      Alcotest.(check bool) (ctx ^ ": status carries the trip") true (t = trip)
    | Scg.Optimal ->
      (* legal: the trip fired after optimality was already certified on
         this component, or the partial bound still closed the gap *)
      Alcotest.(check bool) (ctx ^ ": optimal claim holds") true
        (r.Scg.cost = r.Scg.lower_bound)
    | Scg.Feasible -> Alcotest.failf "%s: trip not reflected in status" ctx);
    Alcotest.(check bool)
      (ctx ^ ": stats record the trip")
      true
      (r.Scg.stats.Scg.Stats.budget_trip <> None)
  | None ->
    (* the loop never reached the fault threshold: a normal run *)
    (match r.Scg.status with
    | Scg.Feasible_budget_exhausted _ -> Alcotest.failf "%s: phantom trip" ctx
    | Scg.Optimal | Scg.Feasible -> ());
    Alcotest.(check bool)
      (ctx ^ ": stats clean")
      true
      (r.Scg.stats.Scg.Stats.budget_trip = None)

let scg_sites =
  [ Budget.Implicit_reduce; Budget.Explicit_reduce; Budget.Subgradient; Budget.Dual_ascent ]

let test_fault_sweep () =
  List.iter
    (fun (name, m) ->
      List.iter
        (fun site ->
          List.iter
            (fun fault_after ->
              let budget = Budget.create ~fault_after ~fault_site:site () in
              let r = Scg.solve ~budget ~config:quick_config m in
              check_anytime_contract ~name ~site ~fault_after m r budget)
            [ 1; 4; 16 ])
        scg_sites)
    (Lazy.force difficult_matrices)

let test_step_budget_scg () =
  (* a coarse budget rather than a pinpoint fault: same contract *)
  let name, m = List.hd (Lazy.force difficult_matrices) in
  let budget = Budget.create ~steps:25 () in
  let r = Scg.solve ~budget ~config:quick_config m in
  (match Budget.tripped budget with
  | Some trip ->
    check_anytime_contract ~name ~site:trip.Budget.site ~fault_after:0 m r budget
  | None -> Alcotest.fail "a 25-step budget should trip on a difficult instance");
  (* node budget trips in the reduction engines *)
  let name, m = List.nth (Lazy.force difficult_matrices) 1 in
  let budget = Budget.create ~nodes:10 () in
  let r = Scg.solve ~budget ~config:quick_config m in
  match Budget.tripped budget with
  | Some trip ->
    check_anytime_contract ~name ~site:trip.Budget.site ~fault_after:0 m r budget
  | None -> Alcotest.fail "a 10-node budget should trip on a difficult instance"

let test_deadline_scg () =
  let name, m = List.hd (Lazy.force difficult_matrices) in
  let budget = Budget.create ~timeout:0.0 ~check_every:1 () in
  let r = Scg.solve ~budget ~config:quick_config m in
  match Budget.tripped budget with
  | Some trip ->
    (match trip.Budget.reason with
    | Budget.Deadline _ -> ()
    | other ->
      Alcotest.failf "expected a deadline trip, got %s"
        (Fmt.str "%a" Budget.pp_reason other));
    check_anytime_contract ~name ~site:trip.Budget.site ~fault_after:0 m r budget
  | None -> Alcotest.fail "a zero deadline must trip"

(* ------------------------------------------------------------------ *)
(* the other governed engines                                         *)
(* ------------------------------------------------------------------ *)

let test_exact_budget () =
  let m = Test_support.medium_matrix_of_seed 42 in
  let full = Covering.Exact.solve m in
  List.iter
    (fun fault_after ->
      let budget = Budget.create ~fault_after ~fault_site:Budget.Exact_bb () in
      let r = Covering.Exact.solve ~budget m in
      (* fresh matrix: identifiers = indices *)
      Alcotest.(check bool) "feasible" true (Matrix.covers m r.Covering.Exact.solution);
      Alcotest.(check bool) "lb valid" true
        (r.Covering.Exact.lower_bound <= full.Covering.Exact.cost);
      Alcotest.(check bool) "cost bounded below by optimum" true
        (r.Covering.Exact.cost >= full.Covering.Exact.cost))
    [ 1; 2; 8; 64 ]

let test_dual_ascent_budget () =
  let m = Test_support.medium_matrix_of_seed 7 in
  let full = Lagrangian.Dual_ascent.run m in
  let budget = Budget.create ~fault_after:1 ~fault_site:Budget.Dual_ascent () in
  let tripped = Lagrangian.Dual_ascent.run ~budget m in
  (* still dual feasible: column loads within costs *)
  let ok = ref true in
  for j = 0 to Matrix.n_cols m - 1 do
    let load =
      Array.fold_left (fun acc i -> acc +. tripped.Lagrangian.Dual_ascent.m.(i)) 0.
        (Matrix.col m j)
    in
    if load > float_of_int (Matrix.cost m j) +. 1e-6 then ok := false
  done;
  Alcotest.(check bool) "dual feasible after trip" true !ok;
  Alcotest.(check bool) "bound weaker but non-negative" true
    (tripped.Lagrangian.Dual_ascent.value >= 0.
    && tripped.Lagrangian.Dual_ascent.value <= full.Lagrangian.Dual_ascent.value +. 1e-6)

let test_espresso_budget () =
  let pla = Logic.Pla.parse ".i 4\n.o 1\n.type fd\n1--- 1\n-1-- 1\n--1- 1\n---1 1\n1111 -\n.e" in
  let on = Logic.Pla.onset pla 0 and dc = Logic.Pla.dcset pla 0 in
  List.iter
    (fun fault_after ->
      let budget = Budget.create ~fault_after ~fault_site:Budget.Espresso_loop () in
      let r = Espresso.minimise ~budget ~mode:Espresso.Strong ~on ~dc () in
      (* whatever happened, the result is a cover of ON within ON ∪ DC *)
      List.iter
        (fun c ->
          Alcotest.(check bool) "covers ON" true
            (Logic.Cover.covers_cube (Logic.Cover.union r.Espresso.cover dc) c))
        (Logic.Cover.cubes on);
      if Budget.tripped budget <> None then
        Alcotest.(check bool) "interrupted flagged" true r.Espresso.interrupted)
    [ 1; 2; 5 ]

(* ------------------------------------------------------------------ *)
(* differential: governed-but-unlimited ≡ ungoverned                  *)
(* ------------------------------------------------------------------ *)

let test_differential () =
  List.iter
    (fun (name, m) ->
      let plain = Scg.solve ~config:quick_config m in
      let governed = Scg.solve ~budget:(Budget.create ()) ~config:quick_config m in
      let ctx f = name ^ ": " ^ f in
      Alcotest.(check (list int)) (ctx "solution") plain.Scg.solution governed.Scg.solution;
      Alcotest.(check int) (ctx "cost") plain.Scg.cost governed.Scg.cost;
      Alcotest.(check int) (ctx "lower bound") plain.Scg.lower_bound
        governed.Scg.lower_bound;
      Alcotest.(check bool) (ctx "optimal") plain.Scg.proven_optimal
        governed.Scg.proven_optimal;
      Alcotest.(check bool) (ctx "status") true (plain.Scg.status = governed.Scg.status);
      Alcotest.(check int) (ctx "steps") plain.Scg.stats.Scg.Stats.subgradient_steps
        governed.Scg.stats.Scg.Stats.subgradient_steps;
      Alcotest.(check int) (ctx "iterations") plain.Scg.stats.Scg.Stats.iterations
        governed.Scg.stats.Scg.Stats.iterations;
      Alcotest.(check int) (ctx "fixes") plain.Scg.stats.Scg.Stats.fixes
        governed.Scg.stats.Scg.Stats.fixes;
      Alcotest.(check int) (ctx "penalty fixes") plain.Scg.stats.Scg.Stats.penalty_fixes
        governed.Scg.stats.Scg.Stats.penalty_fixes)
    (Lazy.force difficult_matrices)

(* ------------------------------------------------------------------ *)
(* fsm: the governor reaches the binate branch-and-bound               *)
(* ------------------------------------------------------------------ *)

let fsm_tr input source next output =
  { Fsm.Machine.input = Logic.Cube.of_string input; source; next; output }

(* s1 and s2 are equivalent, so a closed cover exists and the binate
   search does real branching (same machine as test_fsm's mergeable) *)
let fsm_machine () =
  Fsm.Machine.create ~ni:1 ~no:1 ~states:[| "s0"; "s1"; "s2" |] ~reset:0
    [
      fsm_tr "0" 0 (Some 1) "0";
      fsm_tr "1" 0 (Some 2) "1";
      fsm_tr "0" 1 (Some 0) "1";
      fsm_tr "1" 1 (Some 1) "0";
      fsm_tr "0" 2 (Some 0) "1";
      fsm_tr "1" 2 (Some 2) "0";
    ]

(* A trip must stop an in-flight minimisation at the branch-and-bound
   checkpoint: either the search winds down to an incumbent
   ([optimal = false]) or — when the trip fires before any closed cover
   was seen — minimise raises its typed Invalid_argument.  Both are
   acceptable ends; what the test pins is that the governor tripped at
   [Exact_bb] at all (before this fix only the node cap reached the
   binate search, so deadlines, drain and fault injection sailed by). *)
let check_fsm_stopped b =
  (match Fsm.Minimise.minimise ~budget:b (fsm_machine ()) with
  | r -> Alcotest.(check bool) "wound down" false r.Fsm.Minimise.optimal
  | exception Invalid_argument _ -> ());
  Budget.tripped b

let test_fsm_trip_site () =
  let b = Budget.create ~fault_after:1 ~fault_site:Budget.Exact_bb () in
  match check_fsm_stopped b with
  | Some { Budget.site = Budget.Exact_bb; reason = Budget.Fault_injected 1; _ } ->
    ()
  | t ->
    Alcotest.failf "wrong trip: %s"
      (match t with Some t -> Budget.describe t | None -> "none")

let test_fsm_interrupt () =
  (* the daemon's drain path: Budget.interrupt from outside the solve *)
  let b = Budget.create () in
  Budget.interrupt b;
  match check_fsm_stopped b with
  | Some { Budget.site = Budget.Exact_bb; reason = Budget.Interrupted; _ } -> ()
  | t ->
    Alcotest.failf "wrong trip: %s"
      (match t with Some t -> Budget.describe t | None -> "none")

let test_fsm_deadline () =
  (* an already-expired deadline trips on the very first search node
     (check_every 1: the tiny search must not finish between clock reads) *)
  let b = Budget.create ~timeout:0. ~check_every:1 () in
  match check_fsm_stopped b with
  | Some { Budget.site = Budget.Exact_bb; reason = Budget.Deadline _; _ } -> ()
  | t ->
    Alcotest.failf "wrong trip: %s"
      (match t with Some t -> Budget.describe t | None -> "none")

let test_fsm_differential () =
  (* an active but unlimited governor changes nothing *)
  let plain = Fsm.Minimise.minimise (fsm_machine ()) in
  let governed = Fsm.Minimise.minimise ~budget:(Budget.create ()) (fsm_machine ()) in
  Alcotest.(check int) "states" plain.Fsm.Minimise.minimised_states
    governed.Fsm.Minimise.minimised_states;
  Alcotest.(check bool) "optimal" plain.Fsm.Minimise.optimal
    governed.Fsm.Minimise.optimal;
  Alcotest.(check int) "nodes" plain.Fsm.Minimise.nodes governed.Fsm.Minimise.nodes;
  Alcotest.(check bool) "chosen" true
    (plain.Fsm.Minimise.chosen = governed.Fsm.Minimise.chosen)

let () =
  Alcotest.run "budget"
    [
      ( "ticks",
        [
          Alcotest.test_case "none is inert" `Quick test_none_inert;
          Alcotest.test_case "unlimited never trips" `Quick test_unlimited_active;
          Alcotest.test_case "node budget" `Quick test_node_budget;
          Alcotest.test_case "step budget" `Quick test_step_budget;
          Alcotest.test_case "fault site filter" `Quick test_fault_site_filter;
          Alcotest.test_case "deadline, fake clock" `Quick test_deadline_fake_clock;
          Alcotest.test_case "interrupt" `Quick test_interrupt;
          Alcotest.test_case "interrupt reaches forks" `Quick
            test_interrupt_propagates_to_forks;
          Alcotest.test_case "interrupt none no-op" `Quick test_interrupt_none_noop;
          Alcotest.test_case "fault raise" `Quick test_fault_raise;
          Alcotest.test_case "site names" `Quick test_site_names_roundtrip;
        ] );
      ( "scg",
        [
          Alcotest.test_case "fault sweep, all sites" `Quick test_fault_sweep;
          Alcotest.test_case "step/node budgets" `Quick test_step_budget_scg;
          Alcotest.test_case "deadline" `Quick test_deadline_scg;
          Alcotest.test_case "differential" `Quick test_differential;
        ] );
      ( "engines",
        [
          Alcotest.test_case "exact" `Quick test_exact_budget;
          Alcotest.test_case "dual ascent" `Quick test_dual_ascent_budget;
          Alcotest.test_case "espresso" `Quick test_espresso_budget;
        ] );
      ( "fsm",
        [
          Alcotest.test_case "trip site" `Quick test_fsm_trip_site;
          Alcotest.test_case "interrupt" `Quick test_fsm_interrupt;
          Alcotest.test_case "deadline" `Quick test_fsm_deadline;
          Alcotest.test_case "differential" `Quick test_fsm_differential;
        ] );
    ]
