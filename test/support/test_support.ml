(* Shared generators for the covering-layer test suites. *)

module Matrix = Covering.Matrix

(* A random feasible covering matrix: [n_rows] rows over [n_cols] columns,
   density roughly [density], every row non-empty by construction. *)
let random_matrix rng ?(uniform = false) ~n_rows ~n_cols ~density () =
  let rows =
    List.init n_rows (fun _ ->
        let r =
          List.filter
            (fun _ -> Random.State.float rng 1.0 < density)
            (List.init n_cols Fun.id)
        in
        if r = [] then [ Random.State.int rng n_cols ] else r)
  in
  let cost =
    Array.init n_cols (fun _ -> if uniform then 1 else 1 + Random.State.int rng 5)
  in
  Matrix.create ~cost ~n_cols rows

(* QCheck wrapper: a seed-driven arbitrary so shrinking stays trivial. *)
let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let small_matrix_of_seed ?uniform seed =
  let rng = Random.State.make [| seed |] in
  let n_rows = 2 + Random.State.int rng 8 in
  let n_cols = 2 + Random.State.int rng 8 in
  random_matrix rng ?uniform ~n_rows ~n_cols ~density:0.35 ()

let medium_matrix_of_seed ?uniform seed =
  let rng = Random.State.make [| seed |] in
  let n_rows = 10 + Random.State.int rng 25 in
  let n_cols = 8 + Random.State.int rng 16 in
  random_matrix rng ?uniform ~n_rows ~n_cols ~density:0.2 ()

(* The worked bound-hierarchy instances live in the benchmark suite so the
   examples and benches share them; re-exported here for the test files. *)
let fig1_matrix = Benchsuite.Worked.fig1
let c5_matrix = Benchsuite.Worked.c5

(* substring test for error-message assertions *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
