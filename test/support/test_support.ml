(* Shared generators for the covering-layer test suites. *)

module Matrix = Covering.Matrix

(* A random feasible covering matrix: [n_rows] rows over [n_cols] columns,
   density roughly [density], every row non-empty by construction. *)
let random_matrix rng ?(uniform = false) ~n_rows ~n_cols ~density () =
  let rows =
    List.init n_rows (fun _ ->
        let r =
          List.filter
            (fun _ -> Random.State.float rng 1.0 < density)
            (List.init n_cols Fun.id)
        in
        if r = [] then [ Random.State.int rng n_cols ] else r)
  in
  let cost =
    Array.init n_cols (fun _ -> if uniform then 1 else 1 + Random.State.int rng 5)
  in
  Matrix.create ~cost ~n_cols rows

(* QCheck wrapper: a seed-driven arbitrary so shrinking stays trivial. *)
let arb_seed = QCheck.make ~print:string_of_int (QCheck.Gen.int_bound 1_000_000)

let small_matrix_of_seed ?uniform seed =
  let rng = Random.State.make [| seed |] in
  let n_rows = 2 + Random.State.int rng 8 in
  let n_cols = 2 + Random.State.int rng 8 in
  random_matrix rng ?uniform ~n_rows ~n_cols ~density:0.35 ()

let medium_matrix_of_seed ?uniform seed =
  let rng = Random.State.make [| seed |] in
  let n_rows = 10 + Random.State.int rng 25 in
  let n_cols = 8 + Random.State.int rng 16 in
  random_matrix rng ?uniform ~n_rows ~n_cols ~density:0.2 ()

(* The worked bound-hierarchy instances live in the benchmark suite so the
   examples and benches share them; re-exported here for the test files. *)
let fig1_matrix = Benchsuite.Worked.fig1
let c5_matrix = Benchsuite.Worked.c5

(* substring test for error-message assertions *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Shared parser corpora                                              *)
(*                                                                    *)
(* One copy of the known-good inputs and the malformed corpus per     *)
(* text format, used by test_parse_errors (parsers called directly)   *)
(* and test_serve (the same bytes arriving over the daemon socket     *)
(* must come back as PARSE_ERROR, never crash a worker).  Each        *)
(* malformed entry is (name, input, line, expected-message-substring).*)
(* ------------------------------------------------------------------ *)

let good_ucp = "# c\np ucp 3 4\nc 1 2 1 3\nr 0 1\nr 1 2\nr 2 3\n"
let good_orlib = "3 4\n1 2 1 3\n2 1 2\n2 2 3\n2 3 4\n"
let good_pla = ".i 3\n.o 2\n.type fd\n11- 10\n-01 1-\n0-0 01\n.e\n"
let good_kiss = ".i 1\n.o 1\n.r a\n0 a b 0\n1 a a 1\n0 b a -\n1 b b 0\n.e\n"

let ucp_corpus =
  [
    ("junk line", "bad", 1, Some "unrecognised");
    ("zero cols", "p ucp 2 0", 1, Some "dimensions");
    ("negative rows", "p ucp -1 3", 1, Some "dimensions");
    ("cost before p", "c 1 2", 1, Some "before the p line");
    ("row before p", "r 0", 1, Some "before the p line");
    ("cost count", "p ucp 1 3\nc 1 2", 2, Some "cost count");
    ("negative cost", "p ucp 1 3\nc 1 -2 3", 2, Some "non-positive");
    ("empty row", "p ucp 1 3\nr", 2, Some "empty row");
    ("column range", "p ucp 1 3\nr 5", 2, Some "out of range");
    ("junk int", "p ucp 1 3\nr x", 2, None);
    ("row count", "p ucp 2 3\nr 0", 0, Some "declares 2 rows");
    ("no p line", "# only a comment", 0, Some "missing p line");
    ("empty input", "", 0, Some "missing p line");
  ]

let orlib_corpus =
  [
    ("empty", "", 0, Some "missing dimensions");
    ("lonely int", "3", 0, Some "missing dimensions");
    ("zero cols", "2 0", 1, Some "dimensions");
    ("junk token", "1 2\n1 x", 2, None);
    ("missing costs", "1 2\n1", 2, Some "unexpected end");
    ("zero cost", "1 2\n1 0\n1 1", 2, Some "non-positive");
    ("missing rows", "1 2\n1 1", 2, Some "missing row");
    ("negative count", "1 2\n1 1\n-1", 3, Some "negative column count");
    ("column range", "1 2\n1 1\n1 5", 3, Some "out of range");
    ("column zero", "1 2\n1 1\n1 0", 3, Some "out of range");
    ("missing cols", "1 2\n1 1\n2 1", 3, Some "unexpected end");
    ("trailing", "1 2\n1 1\n1 1\n7", 4, Some "trailing");
  ]

let pla_corpus =
  [
    ("junk .i", ".i x", 1, None);
    ("bad type", ".i 2\n.o 1\n.type zz", 3, Some ".type");
    ("unsupported", ".phase 01", 1, Some "unsupported");
    ("bad directive", ".frob 3", 1, Some "unrecognised");
    ("cube before .i", "00 1", 1, Some ".i must precede");
    ("cube before .o", ".i 2\n00 1", 2, Some ".o must precede");
    ("input width", ".i 2\n.o 1\n0 1", 3, Some "input plane width");
    ("output width", ".i 2\n.o 1\n00 11", 3, Some "output plane width");
    ("bad cube char", ".i 2\n.o 1\n0z 1", 3, None);
    ("bad output char", ".i 2\n.o 1\n00 2", 3, Some "output plane");
    ("one field", ".i 2\n.o 1\n00", 3, Some "expected");
    ("missing .i", "# nothing\n.e", 0, Some "missing .i");
    ("missing .o", ".i 2\n.e", 0, Some "missing .o");
    ("empty input", "", 0, Some "missing .i");
  ]

let kiss_corpus =
  [
    ("junk .i", ".i x", 1, None);
    ("bad directive", ".frob", 1, Some "unrecognised");
    ("early transition", "0 s0 s1 0", 1, Some ".i/.o must precede");
    ("three fields", ".i 1\n.o 1\n0 s0 s1", 3, Some "expected");
    ("input width", ".i 1\n.o 1\n00 s0 s1 0", 3, Some "input width");
    ("output width", ".i 1\n.o 1\n0 s0 s1 00", 3, Some "output width");
    ("bad cube", ".i 1\n.o 1\nz s0 s1 0", 3, None);
    ("missing .i", ".e", 0, Some "missing .i");
    ("missing .o", ".i 1\n.e", 0, Some "missing .o");
    ("empty input", "", 0, Some "missing .i");
  ]
