(* The live metrics registry under the conditions it is built for:
   several domains hammering the same counters and histograms at once.

   The load-bearing properties:
   - conservation — no increment or observation is ever lost or double
     counted, whatever the interleaving (every mutation is one atomic
     operation);
   - snapshot algebra — merge is associative and commutative with the
     empty snapshot as identity, and delta inverts merge, because the
     load generator windows cumulative server totals with exactly that
     algebra;
   - quantile bounds — a histogram quantile is a bucket interpolation,
     so it must always land inside the bucket containing the true rank;
   - registry JSON — the STATS payload shape, including non-finite
     gauge samples degrading to null rather than invalid JSON. *)

module H = Metrics.Histogram
module C = Metrics.Counter
module J = Telemetry.Json

(* ------------------------------------------------------------------ *)
(* multi-domain conservation                                          *)
(* ------------------------------------------------------------------ *)

let test_counter_hammer () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "hammered" in
  let domains = 4 and per_domain = 25_000 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              (* mix incr and add so both paths are raced *)
              if i land 1 = 0 then C.incr c else C.add c 1;
              ignore d
            done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "every increment survived" (domains * per_domain)
    (C.get c);
  (* find-or-create returns the same counter *)
  let again = Metrics.counter reg "hammered" in
  C.incr again;
  Alcotest.(check int) "same counter behind the name"
    ((domains * per_domain) + 1)
    (C.get c)

let test_histogram_hammer () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat" in
  let domains = 4 and per_domain = 20_000 in
  (* each domain observes a deterministic value stream with a known
     total, so the final sum is exact conservation evidence *)
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let acc = ref 0. in
            for i = 1 to per_domain do
              let v = float_of_int (((d * per_domain) + i) mod 97) /. 100. in
              H.observe h v;
              acc := !acc +. v
            done;
            !acc))
  in
  let expected_sum = List.fold_left (fun a w -> a +. Domain.join w) 0. workers in
  let s = H.snapshot h in
  Alcotest.(check int) "every observation counted" (domains * per_domain)
    s.H.count;
  Alcotest.(check int) "count is the sum of the cells" s.H.count
    (Array.fold_left ( + ) 0 s.H.counts);
  Alcotest.(check bool) "sum conserved"
    true
    (Float.abs (s.H.sum -. expected_sum) /. Float.max 1. expected_sum < 1e-9)

(* ------------------------------------------------------------------ *)
(* snapshot algebra                                                   *)
(* ------------------------------------------------------------------ *)

let snap_of values =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "tmp" in
  List.iter (H.observe h) values;
  H.snapshot h

let check_snap_eq name a b =
  Alcotest.(check (array int)) (name ^ ": cells") a.H.counts b.H.counts;
  Alcotest.(check int) (name ^ ": count") a.H.count b.H.count;
  Alcotest.(check bool)
    (name ^ ": sum")
    true
    (Float.abs (a.H.sum -. b.H.sum) < 1e-9)

let test_merge_algebra () =
  let a = snap_of [ 0.001; 0.2; 5.0; 1000.0 ] in
  let b = snap_of [ 0.0004; 0.0004; 3.3 ] in
  let c = snap_of [ 0.05 ] in
  let empty = snap_of [] in
  check_snap_eq "associative"
    (H.merge (H.merge a b) c)
    (H.merge a (H.merge b c));
  check_snap_eq "commutative" (H.merge a b) (H.merge b a);
  check_snap_eq "identity" (H.merge a empty) a;
  (* delta inverts merge: the window between two cumulative snapshots *)
  check_snap_eq "delta inverts merge" (H.delta ~after:(H.merge a b) ~before:a) b;
  (* mismatched bounds are a typed refusal, not silent garbage *)
  let other =
    let reg = Metrics.create () in
    let h = Metrics.histogram reg "sz" ~bounds:H.default_size_bounds in
    H.snapshot h
  in
  (match H.merge a other with
  | _ -> Alcotest.fail "merge across different bounds must raise"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* quantile bounds                                                    *)
(* ------------------------------------------------------------------ *)

(* the bucket of the snapshot's bounds that holds value [v] *)
let bucket_range (s : H.snapshot) v =
  let n = Array.length s.H.bounds in
  let rec find i = if i >= n || v <= s.H.bounds.(i) then i else find (i + 1) in
  let i = find 0 in
  let lo = if i = 0 then 0. else s.H.bounds.(i - 1) in
  let hi = if i >= n then Float.infinity else s.H.bounds.(i) in
  (lo, hi)

let test_quantile_bounds () =
  (* 1000 deterministic pseudo-random samples; for each q, the estimate
     must land inside the bucket containing the true order statistic *)
  let st = Random.State.make [| 42 |] in
  let values =
    Array.init 1000 (fun _ -> Random.State.float st 10.0 +. 0.0002)
  in
  let s = snap_of (Array.to_list values) in
  let sorted = Array.copy values in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let rank =
        min (Array.length sorted - 1)
          (int_of_float (Float.of_int (Array.length sorted) *. q))
      in
      let truth = sorted.(rank) in
      let lo, hi = bucket_range s truth in
      let est = H.quantile s q in
      if not (est >= lo -. 1e-12 && est <= hi +. 1e-12) then
        Alcotest.failf "q=%g: estimate %g outside true bucket [%g, %g]" q est
          lo hi)
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ];
  (* monotone in q *)
  let prev = ref neg_infinity in
  List.iter
    (fun q ->
      let est = H.quantile s q in
      Alcotest.(check bool) "quantile monotone" true (est >= !prev);
      prev := est)
    [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 0.99 ];
  (* empty snapshot reads 0; overflow clamps to the last finite bound *)
  Alcotest.(check (float 0.)) "empty" 0. (H.quantile (snap_of []) 0.5);
  let top = snap_of [ 1e9; 1e9; 1e9 ] in
  Alcotest.(check (float 0.)) "overflow clamps"
    top.H.bounds.(Array.length top.H.bounds - 1)
    (H.quantile top 0.5)

let test_json_roundtrip () =
  let s = snap_of [ 0.0002; 0.3; 0.3; 12.0; 1e6 ] in
  (match H.of_json (H.to_json s) with
  | None -> Alcotest.fail "to_json does not round-trip"
  | Some s' -> check_snap_eq "round-trip" s s');
  (* a foreign document is a None, not an exception *)
  Alcotest.(check bool) "garbage rejected" true
    (H.of_json (J.String "nope") = None
    && H.of_json (J.Obj [ ("count", J.Int 3) ]) = None)

(* ------------------------------------------------------------------ *)
(* registry snapshot                                                  *)
(* ------------------------------------------------------------------ *)

let test_registry_json () =
  let reg = Metrics.create () in
  C.add (Metrics.counter reg "reqs") 7;
  H.observe (Metrics.histogram reg "lat") 0.25;
  Metrics.gauge reg "depth" (fun () -> 3.0);
  Metrics.gauge reg "broken" (fun () -> failwith "probe died");
  let js = Metrics.snapshot_json reg in
  (* the serialized form must be valid JSON even with the raising gauge
     (non-finite samples degrade to null) *)
  (match J.of_string (J.to_string js) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "snapshot_json not parseable: %s" e);
  let get ks =
    List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some js) ks
  in
  (match get [ "counters"; "reqs" ] with
  | Some (J.Int 7) -> ()
  | other ->
    Alcotest.failf "counters.reqs: %s"
      (match other with Some j -> J.to_string j | None -> "missing"));
  (match get [ "gauges"; "depth" ] with
  | Some (J.Float f) when Float.abs (f -. 3.0) < 1e-9 -> ()
  | _ -> Alcotest.fail "gauges.depth missing or wrong");
  (match get [ "histograms"; "lat"; "count" ] with
  | Some (J.Int 1) -> ()
  | _ -> Alcotest.fail "histograms.lat.count missing");
  (* name clashes across metric kinds are refused loudly *)
  (match Metrics.histogram reg "reqs" with
  | _ -> Alcotest.fail "counter/histogram name clash must raise"
  | exception Invalid_argument _ -> ());
  (* telemetry probes import as gauges *)
  Metrics.register_telemetry_probes reg;
  match
    Option.bind (J.member "gauges" (Metrics.snapshot_json reg))
      (J.member "gc.minor_words")
  with
  | Some (J.Float _) -> ()
  | _ -> Alcotest.fail "gc.minor_words gauge not imported"

let () =
  Alcotest.run "metrics"
    [
      ( "conservation",
        [
          Alcotest.test_case "counter hammering" `Quick test_counter_hammer;
          Alcotest.test_case "histogram hammering" `Quick test_histogram_hammer;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "merge algebra" `Quick test_merge_algebra;
          Alcotest.test_case "quantile bounds" `Quick test_quantile_bounds;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        ] );
      ( "registry",
        [ Alcotest.test_case "snapshot json" `Quick test_registry_json ] );
    ]
