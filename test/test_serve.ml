(* The ucp_serve daemon, exercised in-process over real Unix-domain
   sockets: protocol round-trips in every payload format, the malformed
   wire-input corpus (framing garbage AND parser garbage — the daemon
   must answer PARSE_ERROR or close cleanly, never crash), per-request
   crash isolation with signature-scoped cache invalidation,
   deterministic overload shedding, budget clamping, and drain.

   Each test starts its own daemon on a fresh socket path and stops it;
   a helper asserts the daemon still answers PING before the stop so a
   "passing" test cannot leave a dead server behind. *)

module Proto = Serve.Proto
module Daemon = Serve.Daemon
module Client = Serve.Client
module Load = Serve.Load
module Json = Scg.Telemetry.Json

let socket_path =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ucp-test-%d-%d-%s.sock" (Unix.getpid ()) !counter tag)

let with_daemon ?(configure = Fun.id) tag f =
  let socket = socket_path tag in
  let config = configure (Daemon.default_config ~socket) in
  let d = Daemon.start { config with Daemon.socket } in
  if not (Client.wait_ready ~socket ()) then begin
    Daemon.stop d;
    Alcotest.failf "%s: daemon never became ready" tag
  end;
  let finally () = Daemon.stop d in
  Fun.protect ~finally (fun () ->
      let r = f d socket in
      Alcotest.(check bool) (tag ^ ": daemon alive at test end") true
        (Client.ping ~socket);
      r)

let solve ?timeout ?nodes ?steps ?fault_after ?fault_raise ~socket fmt payload =
  Client.request ~socket
    (Proto.solve_request ?timeout ?nodes ?steps ?fault_after ?fault_raise
       ~format:fmt ~length:(String.length payload) ())
    ~payload

let check_code name expected (r : Client.response) =
  Alcotest.(check string) (name ^ ": code")
    (Proto.string_of_code expected)
    (Proto.string_of_code r.Client.code)

let daemon_stat stats path =
  let rec walk j = function
    | [] -> (match j with Json.Int n -> Some n | _ -> None)
    | k :: rest ->
      (match j with
      | Json.Obj fields ->
        Option.bind (List.assoc_opt k fields) (fun j' -> walk j' rest)
      | _ -> None)
  in
  match walk stats (String.split_on_char '.' path) with
  | Some n -> n
  | None -> Alcotest.failf "STATS lacks %s in %s" path (Json.to_string stats)

(* ------------------------------------------------------------------ *)
(* protocol round-trips                                               *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  with_daemon "roundtrip" (fun _ socket ->
      (* one good payload per format, through the whole stack *)
      List.iter
        (fun (name, fmt, payload, body_field) ->
          let r = solve ~socket fmt payload in
          check_code name Proto.OK r;
          (match Proto.header "cost" r.Client.headers with
          | Some c -> Alcotest.(check bool) (name ^ ": integer cost") true
              (int_of_string_opt c <> None)
          | None -> Alcotest.failf "%s: no cost header" name);
          match Json.of_string r.Client.body with
          | Ok body ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: body has %s" name body_field)
              true
              (Json.member body_field body <> None)
          | Error e -> Alcotest.failf "%s: unparseable body: %s" name e)
        [
          ("ucp", Proto.Ucp, Test_support.good_ucp, "solution");
          ("orlib", Proto.Orlib, Test_support.good_orlib, "solution");
          ("pla", Proto.Pla, Test_support.good_pla, "solution");
          (* FSM minimisation reports state counts, not a column set *)
          ("kiss", Proto.Kiss, Test_support.good_kiss, "minimised_states");
        ];
      (* correlation ids echo back *)
      let r =
        Client.request ~socket
          (Proto.solve_request ~id:"req-42" ~format:Proto.Ucp
             ~length:(String.length Test_support.good_ucp) ())
          ~payload:Test_support.good_ucp
      in
      Alcotest.(check (option string)) "id echoed" (Some "req-42")
        (Proto.header "id" r.Client.headers);
      (* PING and STATS *)
      Alcotest.(check bool) "ping" true (Client.ping ~socket);
      let stats = Client.stats ~socket in
      Alcotest.(check bool) "requests counted" true
        (daemon_stat stats "received" >= 5))

let test_warm_cache () =
  with_daemon "warm" (fun _ socket ->
      let payload = Load.ucp_payload ~seed:5 ~rows:12 ~cols:24 in
      let first = solve ~socket Proto.Ucp payload in
      check_code "cold" Proto.OK first;
      Alcotest.(check (option string)) "cold misses" (Some "miss")
        (Proto.header "warm" first.Client.headers);
      let again = solve ~socket Proto.Ucp payload in
      check_code "warm" Proto.OK again;
      Alcotest.(check (option string)) "repeat hits" (Some "hit")
        (Proto.header "warm" again.Client.headers);
      (* warm and cold answers agree on cost *)
      Alcotest.(check (option string)) "same cost"
        (Proto.header "cost" first.Client.headers)
        (Proto.header "cost" again.Client.headers);
      let stats = Client.stats ~socket in
      Alcotest.(check bool) "cache hit counted" true
        (daemon_stat stats "cache.hits" >= 1))

(* ------------------------------------------------------------------ *)
(* malformed and adversarial wire input                               *)
(* ------------------------------------------------------------------ *)

let test_malformed_framing () =
  with_daemon "framing" (fun _ socket ->
      List.iter
        (fun (bytes, note) ->
          match Client.send_raw ~socket bytes with
          | None -> () (* clean close: acceptable *)
          | Some (Proto.PARSE_ERROR, _, _) -> ()
          | Some (code, _, _) ->
            Alcotest.failf "%s: answered %s" note (Proto.string_of_code code))
        Load.raw_frames;
      (* the daemon survives the whole corpus and still solves *)
      check_code "after garbage" Proto.OK
        (solve ~socket Proto.Ucp Test_support.good_ucp))

let test_malformed_payloads () =
  (* the parser corpora arrive over the socket instead of via files:
     same typed errors, now as PARSE_ERROR frames with the daemon intact *)
  with_daemon "payloads" (fun _ socket ->
      List.iter
        (fun (fmt_name, fmt, corpus) ->
          List.iter
            (fun (name, payload, _line, _contains) ->
              let r = solve ~socket fmt payload in
              check_code (fmt_name ^ " " ^ name) Proto.PARSE_ERROR r)
            corpus)
        [
          ("ucp", Proto.Ucp, Test_support.ucp_corpus);
          ("pla", Proto.Pla, Test_support.pla_corpus);
          ("kiss", Proto.Kiss, Test_support.kiss_corpus);
          ("orlib", Proto.Orlib, Test_support.orlib_corpus);
        ])

let test_infeasible_over_the_wire () =
  with_daemon "infeasible" (fun _ socket ->
      (* an orlib row declaring zero covering columns: typed Infeasible,
         its own wire code (exit 7 on the CLI), not a parse error *)
      let r = solve ~socket Proto.Orlib "1 2\n1 1\n0" in
      check_code "uncoverable row" Proto.INFEASIBLE r)

let test_mid_payload_disconnect () =
  with_daemon "disconnect" (fun _ socket ->
      (* promise 4096 bytes, send 10, vanish: the worker's read times
         out or sees EOF; either way no crash and the next request works *)
      (match Client.send_raw ~socket "UCP/1 SOLVE ucp 4096\n\np ucp 3 4\n" with
      | None -> ()
      | Some (Proto.PARSE_ERROR, _, _) -> ()
      | Some (code, _, _) ->
        Alcotest.failf "disconnect answered %s" (Proto.string_of_code code));
      check_code "next request fine" Proto.OK
        (solve ~socket Proto.Ucp Test_support.good_ucp))

(* ------------------------------------------------------------------ *)
(* budgets on the wire                                                *)
(* ------------------------------------------------------------------ *)

let test_budget_clamp () =
  (* server ceiling beats the client's ask: a request claiming a huge
     step budget against a 1-step ceiling still winds down anytime *)
  with_daemon "clamp"
    ~configure:(fun c -> { c with Daemon.max_steps = Some 1 })
    (fun _ socket ->
      let payload = Load.ucp_payload ~seed:9 ~rows:30 ~cols:60 in
      let r = solve ~steps:1_000_000 ~socket Proto.Ucp payload in
      check_code "clamped" Proto.FEASIBLE_BUDGET r;
      match Json.of_string r.Client.body with
      | Ok body ->
        Alcotest.(check bool) "still a solution" true
          (Json.member "solution" body <> None)
      | Error e -> Alcotest.failf "unparseable body: %s" e)

let test_fault_cooperative () =
  with_daemon "fault-coop"
    ~configure:(fun c -> { c with Daemon.allow_fault_injection = true })
    (fun _ socket ->
      let payload = Load.ucp_payload ~seed:11 ~rows:20 ~cols:40 in
      let r = solve ~fault_after:1 ~socket Proto.Ucp payload in
      check_code "cooperative trip" Proto.FEASIBLE_BUDGET r)

let test_fault_headers_gated () =
  (* without allow_fault_injection the fault headers are ignored: the
     same request just solves *)
  with_daemon "fault-gated" (fun _ socket ->
      let payload = Load.ucp_payload ~seed:11 ~rows:20 ~cols:40 in
      let r = solve ~fault_after:1 ~fault_raise:true ~socket Proto.Ucp payload in
      check_code "headers ignored" Proto.OK r)

(* ------------------------------------------------------------------ *)
(* crash isolation                                                    *)
(* ------------------------------------------------------------------ *)

let test_crash_isolation () =
  with_daemon "crash"
    ~configure:(fun c -> { c with Daemon.allow_fault_injection = true })
    (fun _ socket ->
      let crash_target = Load.ucp_payload ~seed:13 ~rows:20 ~cols:40 in
      let bystander = Load.ucp_payload ~seed:14 ~rows:12 ~cols:24 in
      (* warm both signatures *)
      check_code "warm target" Proto.OK (solve ~socket Proto.Ucp crash_target);
      check_code "warm bystander" Proto.OK (solve ~socket Proto.Ucp bystander);
      (* crash inside the target's request *)
      let r = solve ~fault_after:1 ~fault_raise:true ~socket Proto.Ucp crash_target in
      check_code "crash surfaces" Proto.INTERNAL_ERROR r;
      (* the daemon survives, the crashed signature was invalidated
         (cold again), the bystander's warmth was not *)
      let after = solve ~socket Proto.Ucp crash_target in
      check_code "target recovers" Proto.OK after;
      Alcotest.(check (option string)) "target went cold" (Some "miss")
        (Proto.header "warm" after.Client.headers);
      let by = solve ~socket Proto.Ucp bystander in
      check_code "bystander fine" Proto.OK by;
      Alcotest.(check (option string)) "bystander stayed warm" (Some "hit")
        (Proto.header "warm" by.Client.headers);
      let stats = Client.stats ~socket in
      Alcotest.(check int) "one crash counted" 1 (daemon_stat stats "crashes");
      Alcotest.(check int) "one invalidation" 1
        (daemon_stat stats "cache.invalidations"))

(* ------------------------------------------------------------------ *)
(* overload shedding                                                  *)
(* ------------------------------------------------------------------ *)

let test_overload_shed () =
  (* deterministic occupancy: 1 worker blocked reading an idle
     connection, queue_depth more idle connections filling the queue —
     the next arrival must be shed with OVERLOAD and a retry-after
     hint, without the daemon reading a single request byte *)
  let depth = 2 in
  with_daemon "overload"
    ~configure:(fun c ->
      { c with Daemon.workers = 1; queue_depth = depth; read_timeout = 3.0 })
    (fun _ socket ->
      let connect_idle () =
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        Unix.connect fd (ADDR_UNIX socket);
        fd
      in
      (* pin the worker first: the idle worker pops this connection and
         blocks in read until its receive timeout; only THEN fill the
         queue, so none of the squatters is shed by accident *)
      let pin = connect_idle () in
      Unix.sleepf 0.4;
      let squatters = List.init depth (fun _ -> connect_idle ()) in
      let idle = pin :: squatters in
      (* let the acceptor drain the backlog into the (now full) queue *)
      Unix.sleepf 0.4;
      let r =
        Client.request ~socket
          (Proto.solve_request ~format:Proto.Ucp
             ~length:(String.length Test_support.good_ucp) ())
          ~payload:Test_support.good_ucp
      in
      check_code "shed" Proto.OVERLOAD r;
      (match Proto.header "retry-after" r.Client.headers with
      | Some h -> Alcotest.(check bool) "retry-after parses" true
          (float_of_string_opt h <> None)
      | None -> Alcotest.fail "OVERLOAD without retry-after");
      List.iter Unix.close idle;
      (* with the squatters gone (and their read timeouts burnt), a
         retried request gets through *)
      let r =
        Client.request ~retries:8 ~backoff:0.25 ~socket
          (Proto.solve_request ~format:Proto.Ucp
             ~length:(String.length Test_support.good_ucp) ())
          ~payload:Test_support.good_ucp
      in
      check_code "after release" Proto.OK r;
      let stats = Client.stats ~socket in
      Alcotest.(check bool) "shed counted" true (daemon_stat stats "shed" >= 1))

(* ------------------------------------------------------------------ *)
(* drain                                                              *)
(* ------------------------------------------------------------------ *)

let test_drain () =
  let socket = socket_path "drain" in
  let d = Daemon.start (Daemon.default_config ~socket) in
  if not (Client.wait_ready ~socket ()) then Alcotest.fail "daemon not ready";
  check_code "pre-drain solve" Proto.OK (solve ~socket Proto.Ucp Test_support.good_ucp);
  Daemon.stop d;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket);
  (match Unix.connect (Unix.socket PF_UNIX SOCK_STREAM 0) (ADDR_UNIX socket) with
  | () -> Alcotest.fail "connect succeeded after drain"
  | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _) -> ());
  (* stop is idempotent *)
  Daemon.stop d

(* ------------------------------------------------------------------ *)
(* observability: registry, HEALTH, access log, conservation          *)
(* ------------------------------------------------------------------ *)

(* metric names contain dots ("requests.accepted"), so walk the registry
   snapshot with whole keys rather than daemon_stat's dot-splitting *)
let metric_counter stats name =
  match
    Option.bind (Json.member "metrics" stats) (fun m ->
        Option.bind (Json.member "counters" m) (Json.member name))
  with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "STATS lacks metrics.counters.%s" name

let bool_member name doc k =
  match Json.member k doc with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "%s lacks boolean %s" name k

let read_lines file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let test_stats_metrics () =
  with_daemon "metrics" (fun _ socket ->
      let r = solve ~socket Proto.Ucp Test_support.good_ucp in
      check_code "solve" Proto.OK r;
      (match Proto.header "trace-id" r.Client.headers with
      | Some id ->
        Alcotest.(check bool) "trace id is boot-seq" true
          (String.contains id '-')
      | None -> Alcotest.fail "response without trace-id header");
      let stats = Client.stats ~socket in
      Alcotest.(check bool) "accepted counted" true
        (metric_counter stats "requests.accepted" >= 1);
      Alcotest.(check bool) "OK responses counted" true
        (metric_counter stats "responses.OK" >= 1);
      (* the legacy flat fields mirror the registry *)
      Alcotest.(check int) "received mirrors accepted"
        (metric_counter stats "requests.accepted")
        (daemon_stat stats "received");
      (* the solve latency histogram saw the request, and its JSON form
         round-trips through the client-side snapshot decoder *)
      match
        Option.bind (Json.member "metrics" stats) (fun m ->
            Option.bind (Json.member "histograms" m)
              (Json.member "solve.seconds.ok"))
      with
      | None -> Alcotest.fail "STATS lacks histograms solve.seconds.ok"
      | Some h ->
        (match Metrics.Histogram.of_json h with
        | None -> Alcotest.fail "solve.seconds.ok not decodable"
        | Some s ->
          Alcotest.(check bool) "histogram non-empty" true
            (s.Metrics.Histogram.count >= 1)))

let test_health_roundtrip () =
  with_daemon "health" (fun _ socket ->
      let h = Client.health ~socket in
      (match Json.member "status" h with
      | Some (Json.String "ok") -> ()
      | other ->
        Alcotest.failf "status not ok: %s"
          (match other with Some j -> Json.to_string j | None -> "missing"));
      Alcotest.(check bool) "ready" true (bool_member "HEALTH" h "ready");
      Alcotest.(check bool) "not saturated" false
        (bool_member "HEALTH" h "saturated"))

let test_health_under_overload () =
  (* same deterministic occupancy as test_overload_shed: worker pinned,
     queue full.  A SOLVE arrival is shed — but HEALTH must still be
     answered, from the acceptor itself, with saturated:true *)
  let depth = 2 in
  with_daemon "health-overload"
    ~configure:(fun c ->
      { c with Daemon.workers = 1; queue_depth = depth; read_timeout = 3.0 })
    (fun _ socket ->
      let connect_idle () =
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        Unix.connect fd (ADDR_UNIX socket);
        fd
      in
      let pin = connect_idle () in
      Unix.sleepf 0.4;
      let squatters = List.init depth (fun _ -> connect_idle ()) in
      let idle = pin :: squatters in
      Unix.sleepf 0.4;
      let r =
        Client.request ~socket
          (Proto.solve_request ~format:Proto.Ucp
             ~length:(String.length Test_support.good_ucp) ())
          ~payload:Test_support.good_ucp
      in
      check_code "solve shed" Proto.OVERLOAD r;
      let h = Client.health ~socket in
      Alcotest.(check bool) "saturated" true
        (bool_member "HEALTH" h "saturated");
      Alcotest.(check bool) "still ready" true (bool_member "HEALTH" h "ready");
      List.iter Unix.close idle;
      (* queue drains as the workers burn the idle EOFs *)
      Alcotest.(check bool) "daemon recovers" true
        (Client.wait_ready ~socket ());
      let stats = Client.stats ~socket in
      Alcotest.(check bool) "fast path counted" true
        (metric_counter stats "requests.health_fastpath" >= 1))

let test_access_log_crash () =
  (* every finished request leaves one JSON line behind — including a
     request that crashed its worker mid-solve, which must also reach
     the requests.crashed counter (crash isolation may not swallow the
     books) *)
  let log_file = Filename.temp_file "ucp-access" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log_file with Sys_error _ -> ())
    (fun () ->
      with_daemon "access"
        ~configure:(fun c ->
          {
            c with
            Daemon.allow_fault_injection = true;
            access_log = Some log_file;
          })
        (fun _ socket ->
          check_code "solve" Proto.OK
            (solve ~socket Proto.Ucp Test_support.good_ucp);
          let r =
            solve ~fault_after:1 ~fault_raise:true ~socket Proto.Ucp
              (Load.ucp_payload ~seed:21 ~rows:20 ~cols:40)
          in
          check_code "crash surfaces" Proto.INTERNAL_ERROR r;
          let stats = Client.stats ~socket in
          Alcotest.(check int) "crash in registry" 1
            (metric_counter stats "requests.crashed");
          Alcotest.(check int) "legacy crashes mirrors" 1
            (daemon_stat stats "crashes");
          let parsed =
            List.map
              (fun line ->
                match Json.of_string line with
                | Ok j -> j
                | Error e ->
                  Alcotest.failf "access line not JSON (%s): %s" e line)
              (read_lines log_file)
          in
          Alcotest.(check bool) "access lines present" true
            (List.length parsed >= 3);
          let code_of j =
            match Json.member "code" j with
            | Some (Json.String s) -> s
            | _ -> Alcotest.failf "access line without code: %s"
                     (Json.to_string j)
          in
          Alcotest.(check bool) "crash line logged" true
            (List.exists (fun j -> code_of j = "INTERNAL_ERROR") parsed);
          (* each line carries the trace id joining it to the telemetry
             stream *)
          List.iter
            (fun j ->
              match Json.member "trace" j with
              | Some (Json.String _) -> ()
              | _ ->
                Alcotest.failf "access line without trace: %s"
                  (Json.to_string j))
            parsed))

let test_conservation () =
  (* after a quiesced mixed run, the final STATS body must balance its
     own books — the same invariant ucp_load --check-invariants enforces
     against a live daemon *)
  with_daemon "conservation" (fun _ socket ->
      check_code "ucp" Proto.OK (solve ~socket Proto.Ucp Test_support.good_ucp);
      check_code "infeasible" Proto.INFEASIBLE
        (solve ~socket Proto.Orlib "1 2\n1 1\n0");
      (* a parse error and a warm repeat also have to balance *)
      ignore (solve ~socket Proto.Ucp "not a matrix at all");
      check_code "warm repeat" Proto.OK
        (solve ~socket Proto.Ucp Test_support.good_ucp);
      let stats = Client.stats ~socket in
      Alcotest.(check (list string)) "books balance" []
        (Load.conservation_errors stats))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "round-trips" `Quick test_roundtrip;
          Alcotest.test_case "warm cache" `Quick test_warm_cache;
          Alcotest.test_case "infeasible" `Quick test_infeasible_over_the_wire;
        ] );
      ( "adversarial",
        [
          Alcotest.test_case "malformed framing" `Quick test_malformed_framing;
          Alcotest.test_case "malformed payloads" `Quick test_malformed_payloads;
          Alcotest.test_case "mid-payload disconnect" `Quick
            test_mid_payload_disconnect;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "server clamp" `Quick test_budget_clamp;
          Alcotest.test_case "cooperative fault" `Quick test_fault_cooperative;
          Alcotest.test_case "fault headers gated" `Quick test_fault_headers_gated;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
          Alcotest.test_case "overload shed" `Quick test_overload_shed;
          Alcotest.test_case "drain" `Quick test_drain;
        ] );
      ( "observability",
        [
          Alcotest.test_case "stats metrics" `Quick test_stats_metrics;
          Alcotest.test_case "health round-trip" `Quick test_health_roundtrip;
          Alcotest.test_case "health under overload" `Quick
            test_health_under_overload;
          Alcotest.test_case "access log and crash books" `Quick
            test_access_log_crash;
          Alcotest.test_case "conservation" `Quick test_conservation;
        ] );
    ]
