(* Differential tests for the dense bit-slice kernels: every Dense
   kernel is an exact integer/word replacement for a sparse loop, so the
   dense and sparse paths must agree bit for bit — on word-level unit
   properties, on boundary widths around the 63-bit word size, and on
   the registry suites end to end (reductions, greedy covers,
   subgradient bounds, full solves). *)

open Covering

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* deterministic word generator: OCaml's Random gives 30 random bits per
   draw, so splice three draws into a full-width word *)
let word_rng = Random.State.make [| 0xD15E; 42 |]

let random_word () =
  let b () = Random.State.bits word_rng in
  (b () lsl 40) lxor (b () lsl 20) lxor b ()

let naive_popcount x =
  let n = ref 0 in
  for k = 0 to Dense.word_bits - 1 do
    if x land (1 lsl k) <> 0 then incr n
  done;
  !n

let naive_bits x =
  List.filter (fun k -> x land (1 lsl k) <> 0)
    (List.init Dense.word_bits Fun.id)

(* ------------------------------------------------------------------ *)
(* Word-level unit properties                                          *)
(* ------------------------------------------------------------------ *)

let test_popcount_random () =
  for _ = 1 to 2000 do
    let w = random_word () in
    check_int (Printf.sprintf "popcount %x" w) (naive_popcount w)
      (Dense.popcount w)
  done

let test_popcount_edges () =
  check_int "zero" 0 (Dense.popcount 0);
  check_int "one" 1 (Dense.popcount 1);
  check_int "all bits" Dense.word_bits (Dense.popcount (-1));
  check_int "max_int" (Dense.word_bits - 1) (Dense.popcount max_int);
  (* the top usable bit makes the word negative; popcount must not care *)
  check_int "top bit" 1 (Dense.popcount (1 lsl (Dense.word_bits - 1)));
  check_int "min_int" 1 (Dense.popcount min_int)

let test_iter_bits_random () =
  for _ = 1 to 500 do
    let w = random_word () in
    let got = ref [] in
    Dense.iter_bits 0 w (fun k -> got := k :: !got);
    let got = List.rev !got in
    check (Printf.sprintf "iter_bits %x" w) true (got = naive_bits w);
    (* ascending order is part of the contract: float accumulations in
       the greedy kernels rely on it *)
    check "ascending" true (List.sort Stdlib.compare got = got)
  done;
  let got = ref [] in
  Dense.iter_bits 100 0b1011 (fun k -> got := k :: !got);
  check "base offset" true (List.rev !got = [ 100; 101; 103 ])

let test_words_for () =
  check_int "0" 0 (Dense.words_for 0);
  check_int "1" 1 (Dense.words_for 1);
  check_int "word_bits" 1 (Dense.words_for Dense.word_bits);
  check_int "word_bits+1" 2 (Dense.words_for (Dense.word_bits + 1))

(* ------------------------------------------------------------------ *)
(* Mirror vs matrix on random instances, boundary widths               *)
(* ------------------------------------------------------------------ *)

let random_matrix ~name ~n_rows ~n_cols ~density =
  Benchsuite.Randucp.dense_cyclic ~name ~n_rows ~n_cols ~density ()

let naive_subset a b =
  List.for_all (fun x -> Array.exists (( = ) x) b) (Array.to_list a)

(* exhaustively compare every Dense kernel against its sparse-walk
   definition on one matrix *)
let agree_on name m =
  let d = Dense.of_matrix m in
  let nr = Matrix.n_rows m and nc = Matrix.n_cols m in
  for i = 0 to nr - 1 do
    let row = Matrix.row m i in
    for j = 0 to nc - 1 do
      check (name ^ " row_mem") true
        (Dense.row_mem d i j = Array.exists (( = ) j) row);
      check (name ^ " col_mem") true
        (Dense.col_mem d j i = Array.exists (( = ) i) (Matrix.col m j))
    done
  done;
  for i = 0 to nr - 1 do
    for i' = 0 to nr - 1 do
      check (name ^ " row_subset") true
        (Dense.row_subset d i i' = naive_subset (Matrix.row m i) (Matrix.row m i'))
    done
  done;
  for j = 0 to nc - 1 do
    for j' = 0 to nc - 1 do
      check (name ^ " col_subset") true
        (Dense.col_subset d j j' = naive_subset (Matrix.col m j) (Matrix.col m j'))
    done
  done;
  (* greedy kernels against a random covered-set *)
  let covered = Dense.make_row_set d in
  let covered_list = ref [] in
  for i = 0 to nr - 1 do
    if Random.State.bool word_rng then begin
      Dense.set_bit covered i;
      covered_list := i :: !covered_list
    end
  done;
  let is_covered i = List.mem i !covered_list in
  for i = 0 to nr - 1 do
    check (name ^ " mem_bit") true (Dense.mem_bit covered i = is_covered i)
  done;
  for j = 0 to nc - 1 do
    let fresh =
      Array.to_list (Matrix.col m j) |> List.filter (fun i -> not (is_covered i))
    in
    check_int (name ^ " col_fresh") (List.length fresh)
      (Dense.col_fresh d j ~covered);
    let seen = ref [] in
    Dense.iter_col_fresh d j ~covered (fun i -> seen := i :: !seen);
    check (name ^ " iter_col_fresh ascending") true
      (List.rev !seen = List.sort Stdlib.compare fresh)
  done;
  (* row_hits against an explicit column set *)
  let cols = Dense.make_col_set d in
  let in_cols = Array.make nc false in
  for j = 0 to nc - 1 do
    if Random.State.bool word_rng then begin
      Dense.set_bit cols j;
      in_cols.(j) <- true
    end
  done;
  for i = 0 to nr - 1 do
    let hits =
      Array.fold_left (fun acc j -> if in_cols.(j) then acc + 1 else acc) 0
        (Matrix.row m i)
    in
    check_int (name ^ " row_hits") hits (Dense.row_hits d i ~cols)
  done;
  (* cover_col returns the fresh count and folds the column in *)
  if nc > 0 then begin
    let covered' = Dense.make_row_set d in
    Array.blit covered 0 covered' 0 (Array.length covered);
    let before = Dense.col_fresh d 0 ~covered:covered' in
    check_int (name ^ " cover_col fresh") before
      (Dense.cover_col d 0 ~covered:covered');
    check_int (name ^ " cover_col after") 0 (Dense.col_fresh d 0 ~covered:covered')
  end

let test_boundary_widths () =
  (* widths straddling the 63-bit word: one word exactly, one bit over,
     and the 64/65 sizes that would trip an Int64-width assumption *)
  List.iter
    (fun n ->
      agree_on
        (Printf.sprintf "rows%d" n)
        (random_matrix ~name:(Printf.sprintf "bw-r%d" n) ~n_rows:n ~n_cols:20
           ~density:0.3);
      agree_on
        (Printf.sprintf "cols%d" n)
        (random_matrix ~name:(Printf.sprintf "bw-c%d" n) ~n_rows:20 ~n_cols:n
           ~density:0.3))
    [ 62; 63; 64; 65 ]

let test_small_shapes () =
  (* single row, single column *)
  agree_on "single-row" (Matrix.create ~n_cols:5 [ [ 0; 2; 4 ] ]);
  agree_on "single-col" (Matrix.create ~n_cols:1 [ [ 0 ]; [ 0 ]; [ 0 ] ]);
  agree_on "1x1" (Matrix.create ~n_cols:1 [ [ 0 ] ])

let test_eligibility () =
  let m = random_matrix ~name:"elig" ~n_rows:40 ~n_cols:30 ~density:0.3 in
  check "dense enough" true (Dense.eligible m);
  check "threshold 0 disables" false (Dense.eligible ~threshold:0 m);
  check "size cap" false (Dense.eligible ~threshold:(40 * 30 - 1) m);
  check "size cap boundary" true (Dense.eligible ~threshold:(40 * 30) m);
  (* k = 2 of 400 columns sits far below the 1/word density floor *)
  let sparse_m =
    Benchsuite.Randucp.cyclic ~name:"elig-sparse" ~n_rows:50 ~n_cols:400 ~k:2 ()
  in
  check "too sparse" false (Dense.eligible ~threshold:max_int sparse_m);
  let empty = Matrix.create ~n_cols:0 [] in
  check "empty never eligible" false (Dense.eligible ~threshold:max_int empty);
  check "attach mirrors eligible" true (Dense.attach m <> None);
  check "attach declines sparse" true (Dense.attach sparse_m = None)

let test_greedy_rejects_foreign_mirror () =
  let a = random_matrix ~name:"fma" ~n_rows:20 ~n_cols:15 ~density:0.3 in
  let b = random_matrix ~name:"fmb" ~n_rows:20 ~n_cols:15 ~density:0.3 in
  let da = Dense.of_matrix a in
  check "foreign mirror rejected" true
    (try
       ignore (Greedy.solve ~dense:da b);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Sparse mirror maintenance through deletions and rollbacks           *)
(* ------------------------------------------------------------------ *)

let test_mirror_through_mutations () =
  let m = random_matrix ~name:"mut" ~n_rows:40 ~n_cols:30 ~density:0.25 in
  let s = Sparse.of_matrix ~dense:true m in
  check "mirror present" true (Sparse.has_mirror s);
  Sparse.check s;
  let mark = Sparse.mark s in
  Sparse.delete_row s 3;
  Sparse.delete_row s 17;
  Sparse.delete_col s 5;
  Sparse.check s;
  let j = Sparse.add_col s ~cost:2 ~id:1000 ~rows:[ 1; 7; 20; 39 ] in
  Sparse.check s;
  Sparse.delete_col s j;
  Sparse.check s;
  Sparse.rollback s mark;
  (* after a full rollback the mirror must agree with the lists again —
     Sparse.check verifies every live row/column bit *)
  Sparse.check s;
  (* and subset answers must match a fresh un-mutated build *)
  let fresh = Sparse.of_matrix m in
  for i = 0 to Sparse.n_rows s - 1 do
    for i' = 0 to Sparse.n_rows s - 1 do
      check "row_subset after rollback" true
        (Sparse.row_subset s i i' = Sparse.row_subset fresh i i')
    done
  done

let test_mirror_through_reduction () =
  (* the real workload: a full worklist reduction (deletions, Gimpel
     appends, internal rollbacks) must leave a consistent mirror, and
     the reduced core must match the mirrorless run exactly *)
  List.iter
    (fun (inst : Benchsuite.Registry.instance) ->
      let m = Benchsuite.Registry.matrix inst in
      let with_mirror = Reduce2.engine ~gimpel:true (Sparse.of_matrix ~dense:true m) in
      Reduce2.seed_all with_mirror;
      Reduce2.run with_mirror;
      Sparse.check (Reduce2.sparse with_mirror);
      let without = Reduce2.engine ~gimpel:true (Sparse.of_matrix m) in
      Reduce2.seed_all without;
      Reduce2.run without;
      let a = Sparse.to_matrix (Reduce2.sparse with_mirror)
      and b = Sparse.to_matrix (Reduce2.sparse without) in
      check (inst.Benchsuite.Registry.name ^ " same core") true
        (Matrix.n_rows a = Matrix.n_rows b
        && Matrix.n_cols a = Matrix.n_cols b
        && Array.init (Matrix.n_rows a) (Matrix.row a)
           = Array.init (Matrix.n_rows b) (Matrix.row b)
        && Array.init (Matrix.n_cols a) (Matrix.col_id a)
           = Array.init (Matrix.n_cols b) (Matrix.col_id b));
      check_int
        (inst.Benchsuite.Registry.name ^ " same fixed cost")
        (Reduce2.fixed_cost without)
        (Reduce2.fixed_cost with_mirror))
    (Benchsuite.Registry.easy () @ Benchsuite.Registry.difficult ()
    @ Benchsuite.Registry.dense ())

(* ------------------------------------------------------------------ *)
(* Registry differential: greedy, subgradient, full solves             *)
(* ------------------------------------------------------------------ *)

let core_of m = (Reduce2.cyclic_core ~gimpel:true m).Reduce.core

let test_greedy_identity () =
  List.iter
    (fun (inst : Benchsuite.Registry.instance) ->
      let m = Benchsuite.Registry.matrix inst in
      let gm = if Matrix.is_empty (core_of m) then m else core_of m in
      let d = Dense.of_matrix gm in
      List.iter
        (fun rule ->
          check
            (inst.Benchsuite.Registry.name ^ " greedy rule")
            true
            (Greedy.solve ~rule ~dense:d gm = Greedy.solve ~rule gm))
        Greedy.all_rules;
      check (inst.Benchsuite.Registry.name ^ " solve_best") true
        (Greedy.solve_best ~dense:d gm = Greedy.solve_best gm);
      check (inst.Benchsuite.Registry.name ^ " solve_exchange") true
        (Greedy.solve_exchange ~dense:d gm = Greedy.solve_exchange gm))
    (Benchsuite.Registry.difficult () @ Benchsuite.Registry.dense ())

let test_subgradient_identity () =
  List.iter
    (fun (inst : Benchsuite.Registry.instance) ->
      let m = Benchsuite.Registry.matrix inst in
      let gm = if Matrix.is_empty (core_of m) then m else core_of m in
      let config =
        { Lagrangian.Subgradient.default_config with max_steps = 120 }
      in
      let dense = Lagrangian.Subgradient.run ~config ~dense_threshold:max_int gm in
      let sparse = Lagrangian.Subgradient.run ~config ~dense_threshold:0 gm in
      let open Lagrangian.Subgradient in
      check (inst.Benchsuite.Registry.name ^ " lower bound") true
        (dense.lower_bound = sparse.lower_bound);
      check (inst.Benchsuite.Registry.name ^ " upper dual") true
        (dense.upper_dual = sparse.upper_dual);
      check (inst.Benchsuite.Registry.name ^ " incumbent") true
        (dense.best_solution = sparse.best_solution
        && dense.best_cost = sparse.best_cost);
      check (inst.Benchsuite.Registry.name ^ " multipliers") true
        (dense.lambda = sparse.lambda && dense.mu = sparse.mu);
      check (inst.Benchsuite.Registry.name ^ " steps") true
        (dense.steps = sparse.steps))
    (Benchsuite.Registry.difficult () @ Benchsuite.Registry.dense ())

let test_solve_identity () =
  (* end to end through Scg.solve: the adaptive dispatch (default
     threshold) vs the forced sparse path *)
  List.iter
    (fun (inst : Benchsuite.Registry.instance) ->
      let m = Benchsuite.Registry.matrix inst in
      let a = Scg.solve m in
      let b =
        Scg.solve ~config:{ Scg.Config.default with dense_threshold = 0 } m
      in
      check (inst.Benchsuite.Registry.name ^ " solution") true
        (a.Scg.solution = b.Scg.solution);
      check (inst.Benchsuite.Registry.name ^ " cost") true
        (a.Scg.cost = b.Scg.cost && a.Scg.lower_bound = b.Scg.lower_bound);
      check (inst.Benchsuite.Registry.name ^ " status") true
        (a.Scg.proven_optimal = b.Scg.proven_optimal))
    (Benchsuite.Registry.difficult () @ Benchsuite.Registry.dense ())

let () =
  Alcotest.run "dense"
    [
      ( "words",
        [
          Alcotest.test_case "popcount random" `Quick test_popcount_random;
          Alcotest.test_case "popcount edges" `Quick test_popcount_edges;
          Alcotest.test_case "iter_bits" `Quick test_iter_bits_random;
          Alcotest.test_case "words_for" `Quick test_words_for;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "boundary widths" `Quick test_boundary_widths;
          Alcotest.test_case "small shapes" `Quick test_small_shapes;
          Alcotest.test_case "eligibility" `Quick test_eligibility;
          Alcotest.test_case "foreign mirror" `Quick
            test_greedy_rejects_foreign_mirror;
        ] );
      ( "mirror",
        [
          Alcotest.test_case "mutations + rollback" `Quick
            test_mirror_through_mutations;
          Alcotest.test_case "full reduction" `Quick test_mirror_through_reduction;
        ] );
      ( "differential",
        [
          Alcotest.test_case "greedy" `Quick test_greedy_identity;
          Alcotest.test_case "subgradient" `Quick test_subgradient_identity;
          Alcotest.test_case "full solve" `Quick test_solve_identity;
        ] );
    ]
