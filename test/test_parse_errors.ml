(* The typed failure surface of the text-format parsers.

   Every parser promises to raise only [Logic.Parse_error.Parse_error] on
   malformed input — with an accurate 1-based line number (0 for
   whole-input errors) — and never [Failure], [Invalid_argument] or
   [Not_found].  The corpus below pins both the promise and the line
   numbers; the truncation fuzz feeds every prefix of known-good inputs
   through the parsers to catch stray exceptions from half-read
   structures. *)

module Parse_error = Logic.Parse_error

let expect_error name parse input ~line ?contains () =
  match parse input with
  | _ -> Alcotest.failf "%s: parse unexpectedly succeeded" name
  | exception Parse_error.Parse_error e ->
    Alcotest.(check int) (name ^ ": line") line e.Parse_error.line;
    (match contains with
    | None -> ()
    | Some needle ->
      let msg = e.Parse_error.what in
      let found =
        let nl = String.length needle and ml = String.length msg in
        let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
        nl = 0 || go 0
      in
      if not found then
        Alcotest.failf "%s: message %S does not mention %S" name msg needle)
  | exception e ->
    Alcotest.failf "%s: wrong exception %s" name (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* .ucp matrices                                                      *)
(* ------------------------------------------------------------------ *)

let ucp_corpus = Test_support.ucp_corpus

let test_ucp_corpus () =
  List.iter
    (fun (name, input, line, contains) ->
      expect_error ("ucp " ^ name) Covering.Instance.parse input ~line ?contains ())
    ucp_corpus

(* ------------------------------------------------------------------ *)
(* OR-Library scp                                                     *)
(* ------------------------------------------------------------------ *)

let orlib_corpus = Test_support.orlib_corpus

let test_orlib_corpus () =
  List.iter
    (fun (name, input, line, contains) ->
      expect_error ("orlib " ^ name) Covering.Instance.parse_orlib input ~line ?contains ())
    orlib_corpus;
  (* a zero column count is well-formed data declaring an uncoverable
     row: typed Infeasible, part of the surface rather than a leak *)
  match Covering.Instance.parse_orlib "1 2\n1 1\n0" with
  | _ -> Alcotest.fail "orlib zero count: expected Infeasible"
  | exception Covering.Infeasible _ -> ()

(* ------------------------------------------------------------------ *)
(* PLA                                                                *)
(* ------------------------------------------------------------------ *)

let pla_corpus = Test_support.pla_corpus

let test_pla_corpus () =
  List.iter
    (fun (name, input, line, contains) ->
      expect_error ("pla " ^ name) Logic.Pla.parse input ~line ?contains ())
    pla_corpus

(* ------------------------------------------------------------------ *)
(* KISS                                                               *)
(* ------------------------------------------------------------------ *)

let kiss_corpus = Test_support.kiss_corpus

let test_kiss_corpus () =
  List.iter
    (fun (name, input, line, contains) ->
      expect_error ("kiss " ^ name) Fsm.Kiss.parse input ~line ?contains ())
    kiss_corpus

(* ------------------------------------------------------------------ *)
(* Column positions                                                   *)
(* ------------------------------------------------------------------ *)

(* the corpus pins line numbers; these pin the 1-based column of the
   offending token, the other half of the editor-position promise *)
let test_column_positions () =
  let expect_pos name parse input ~line ~col =
    match parse input with
    | _ -> Alcotest.failf "%s: parse unexpectedly succeeded" name
    | exception Parse_error.Parse_error e ->
      Alcotest.(check int) (name ^ ": line") line e.Parse_error.line;
      Alcotest.(check int) (name ^ ": col") col e.Parse_error.col
    | exception e ->
      Alcotest.failf "%s: wrong exception %s" name (Printexc.to_string e)
  in
  let ucp = Covering.Instance.parse in
  let orlib = Covering.Instance.parse_orlib in
  (* "r x": the junk token "x" sits at column 3 *)
  expect_pos "ucp junk token" ucp "p ucp 1 2\nr x\n" ~line:2 ~col:3;
  (* "r 0 5": the out-of-range column index is the third token *)
  expect_pos "ucp out of range" ucp "p ucp 1 3\nr 0 5\n" ~line:2 ~col:5;
  expect_pos "orlib junk token" orlib "1 2\n1 1\n2 1 x" ~line:3 ~col:5;
  expect_pos "orlib out of range" orlib "1 2\n1 1\n1 5" ~line:3 ~col:3;
  expect_pos "pla bad cube" (fun s -> Logic.Pla.parse s) ".i 2\n.o 1\n1x 1\n.e\n"
    ~line:3 ~col:1;
  expect_pos "kiss width mismatch" (fun s -> Fsm.Kiss.parse s)
    ".i 1\n.o 1\n0 s0 s1 zz\n" ~line:3 ~col:9

(* ------------------------------------------------------------------ *)
(* Truncation / corruption fuzz: only Parse_error may escape          *)
(* ------------------------------------------------------------------ *)

(* the known-good inputs and the malformed corpora live in
   Test_support so test_serve can replay the same bytes over the
   daemon socket *)
let good_ucp = Test_support.good_ucp
let good_orlib = Test_support.good_orlib
let good_pla = Test_support.good_pla
let good_kiss = Test_support.good_kiss

let never_leaks name parse input =
  (* every prefix, and every single-byte corruption of the full text.
     Typed Infeasible is part of the documented surface (an orlib row
     may declare zero covering columns); anything else is a leak. *)
  let check s =
    match parse s with
    | _ -> ()
    | exception Parse_error.Parse_error _ -> ()
    | exception Covering.Infeasible _ -> ()
    | exception e ->
      Alcotest.failf "%s: %s leaked from %S" name (Printexc.to_string e) s
  in
  for len = 0 to String.length input - 1 do
    check (String.sub input 0 len)
  done;
  let junk = [ 'x'; '-'; '0'; '9'; ' '; '.' ] in
  String.iteri
    (fun i _ ->
      List.iter
        (fun c ->
          let b = Bytes.of_string input in
          Bytes.set b i c;
          check (Bytes.to_string b))
        junk)
    input

let test_fuzz_ucp () = never_leaks "ucp" Covering.Instance.parse good_ucp
let test_fuzz_orlib () = never_leaks "orlib" Covering.Instance.parse_orlib good_orlib
let test_fuzz_pla () = never_leaks "pla" Logic.Pla.parse good_pla
let test_fuzz_kiss () = never_leaks "kiss" Fsm.Kiss.parse good_kiss

(* ------------------------------------------------------------------ *)
(* result APIs and file stamping                                      *)
(* ------------------------------------------------------------------ *)

let test_result_api () =
  (match Covering.Instance.parse_result "p ucp 1 3\nr 5" with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error e ->
    Alcotest.(check int) "ucp result line" 2 e.Parse_error.line;
    Alcotest.(check bool) "no file" true (e.Parse_error.file = None));
  (match Logic.Pla.parse_result good_pla with
  | Ok pla -> Alcotest.(check int) "pla inputs" 3 pla.Logic.Pla.ni
  | Error e -> Alcotest.failf "unexpected error: %s" (Parse_error.to_string e));
  match Fsm.Kiss.parse_result good_kiss with
  | Ok m -> Alcotest.(check int) "kiss states" 2 (Array.length m.Fsm.Machine.states)
  | Error e -> Alcotest.failf "unexpected error: %s" (Parse_error.to_string e)

let test_file_stamping () =
  let dir = Filename.temp_file "ucp_parse" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "broken.ucp" in
  let oc = open_out path in
  output_string oc "p ucp 1 3\nr 9\n";
  close_out oc;
  (match Covering.Instance.parse_file path with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Parse_error.Parse_error e ->
    Alcotest.(check (option string)) "file stamped" (Some path) e.Parse_error.file;
    Alcotest.(check int) "line kept" 2 e.Parse_error.line);
  (match Covering.Instance.parse_file_result path with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error e ->
    Alcotest.(check (option string)) "file in result" (Some path) e.Parse_error.file);
  Sys.remove path;
  let missing = Filename.concat dir "nope.ucp" in
  (match Covering.Instance.parse_file_result missing with
  | Ok _ -> Alcotest.fail "expected Error for a missing file"
  | Error e ->
    Alcotest.(check int) "missing file is a line-0 error" 0 e.Parse_error.line;
    Alcotest.(check (option string)) "missing file stamped" (Some missing)
      e.Parse_error.file);
  (match Logic.Pla.parse_file_result missing with
  | Ok _ -> Alcotest.fail "expected Error for a missing file"
  | Error _ -> ());
  (match Fsm.Kiss.parse_file_result missing with
  | Ok _ -> Alcotest.fail "expected Error for a missing file"
  | Error _ -> ());
  Unix.rmdir dir

let test_roundtrips_still_work () =
  (* the good corpus inputs parse and round-trip through the printers *)
  let m = Covering.Instance.parse good_ucp in
  let m' = Covering.Instance.parse (Covering.Instance.to_string m) in
  Alcotest.(check int) "ucp rows" (Covering.Matrix.n_rows m) (Covering.Matrix.n_rows m');
  let o = Covering.Instance.parse_orlib good_orlib in
  let o' = Covering.Instance.parse_orlib (Covering.Instance.to_orlib o) in
  Alcotest.(check int) "orlib rows" (Covering.Matrix.n_rows o) (Covering.Matrix.n_rows o');
  let k = Fsm.Kiss.parse good_kiss in
  let k' = Fsm.Kiss.parse (Fsm.Kiss.to_string k) in
  Alcotest.(check int) "kiss states" (Array.length k.Fsm.Machine.states)
    (Array.length k'.Fsm.Machine.states)

let () =
  Alcotest.run "parse_errors"
    [
      ( "corpus",
        [
          Alcotest.test_case "ucp" `Quick test_ucp_corpus;
          Alcotest.test_case "orlib" `Quick test_orlib_corpus;
          Alcotest.test_case "pla" `Quick test_pla_corpus;
          Alcotest.test_case "kiss" `Quick test_kiss_corpus;
          Alcotest.test_case "column positions" `Quick test_column_positions;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "ucp prefixes+bytes" `Quick test_fuzz_ucp;
          Alcotest.test_case "orlib prefixes+bytes" `Quick test_fuzz_orlib;
          Alcotest.test_case "pla prefixes+bytes" `Quick test_fuzz_pla;
          Alcotest.test_case "kiss prefixes+bytes" `Quick test_fuzz_kiss;
        ] );
      ( "apis",
        [
          Alcotest.test_case "result variants" `Quick test_result_api;
          Alcotest.test_case "file stamping" `Quick test_file_stamping;
          Alcotest.test_case "round trips" `Quick test_roundtrips_still_work;
        ] );
    ]
